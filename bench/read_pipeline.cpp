// End-to-end read-pipeline bench: in-process collective reads over a 1M
// particle dataset written at 64 virtual ranks (64 leaf files, so every
// read aggregator serves several leaves and coalescing has real batches).
// Reports the slowest rank's per-phase seconds (metadata / request / serve
// / merge / local) for an 8-rank threaded coalesced read, plus two A/B
// comparisons the CI gate checks:
//
//   read.serve_serial vs read.serve_pool — slowest-rank serve-loop seconds
//     at 2 read ranks (32 leaves per aggregator), serial comm-thread
//     serving vs the thread-pool fan-out;
//   read.msgs_per_leaf vs read.msgs_coalesced — total request messages at
//     8 read ranks (`n` holds the message count), one request per leaf vs
//     one per (client, aggregator) pair.
//
// `read_pipeline --json [--out FILE]` emits bat-bench-v1 JSON to
// BENCH_read.json; a plain run prints tables. See docs/PERFORMANCE.md.

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "io/leaf_cache.hpp"
#include "io/reader.hpp"
#include "io/writer.hpp"
#include "obs/metrics.hpp"
#include "test_output_free.hpp"
#include "util/thread_pool.hpp"
#include "vmpi/comm.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

using namespace bat;

namespace {

struct ReadRun {
    ReadPhaseTimings slowest;  // component-wise max over ranks
    std::uint64_t particles = 0;
    std::uint64_t request_msgs = 0;  // total coalesced/per-leaf requests sent
};

ReadRun run_read(const std::filesystem::path& meta_path, const Box& domain, int nranks,
                 ThreadPool* pool, bool coalesce, LeafFileCache& cache) {
    const GridDecomp decomp = grid_decomp_3d(nranks, domain);
    ReadRun run;
    std::mutex mutex;
    const std::uint64_t msgs_before =
        obs::MetricsRegistry::global().counter("read.request_msgs").value();
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        ReaderConfig rc;
        rc.pool = pool;
        rc.coalesce = coalesce;
        rc.cache = &cache;
        const ReadResult result =
            read_particles(comm, meta_path, decomp.rank_read_box(comm.rank()), rc);
        std::lock_guard<std::mutex> lock(mutex);
        run.slowest = ReadPhaseTimings::max(run.slowest, result.timings);
        run.particles += result.particles.count();
    });
    run.request_msgs =
        obs::MetricsRegistry::global().counter("read.request_msgs").value() - msgs_before;
    return run;
}

/// Best (by slowest-rank total) of `runs` collective reads.
ReadRun best_read(const std::filesystem::path& meta_path, const Box& domain, int nranks,
                  ThreadPool* pool, bool coalesce, LeafFileCache& cache, int runs) {
    ReadRun best;
    double best_total = 1e30;
    for (int i = 0; i < runs; ++i) {
        const ReadRun run = run_read(meta_path, domain, nranks, pool, coalesce, cache);
        if (run.slowest.total() < best_total) {
            best_total = run.slowest.total();
            best = run;
        }
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    constexpr int kReadRanks = 8;
    constexpr int kWriteRanks = 64;  // 64 leaves: aggregation never splits a
                                     // writer rank, so many leaves need many
                                     // (virtual) writer ranks
    constexpr std::size_t kParticles = 1 << 20;
    constexpr int kAttrs = 4;
    constexpr int kRuns = 5;

    const auto dir = bench::scratch_dir("read_pipeline");
    const Box domain({0, 0, 0}, {4, 4, 4});
    const ParticleSet global = make_uniform_particles(domain, kParticles, kAttrs, 42);
    const GridDecomp write_decomp = grid_decomp_3d(kWriteRanks, domain);
    const std::vector<ParticleSet> per_rank = partition_particles(global, write_decomp);
    std::vector<Box> bounds;
    for (int r = 0; r < kWriteRanks; ++r) {
        bounds.push_back(write_decomp.rank_box(r));
    }
    WriterConfig wc;
    wc.directory = dir;
    wc.basename = "pipeline";
    wc.tree.target_file_size = 256 << 10;  // below the ~690 KB per virtual
                                           // rank, so no leaves merge
    std::fprintf(stderr, "[bench] writing %zu particles at %d virtual ranks...\n",
                 kParticles, kWriteRanks);
    const WriteResult written = write_particles_serial(per_rank, bounds, wc);
    std::fprintf(stderr, "[bench] %d leaves; reading at %d ranks, best of %d runs\n",
                 written.num_leaves, kReadRanks, kRuns);

    // At least one worker even on single-core hosts, so the threaded
    // serving path (task fan-out + comm-thread work-helping) is what gets
    // measured, not a silent fallback to inline serving.
    ThreadPool pool(std::max<std::size_t>(1, ThreadPool::default_concurrency()));
    LeafFileCache cache(static_cast<std::size_t>(written.num_leaves));
    const auto& meta = written.metadata_path;

    // Warm the leaf cache and the pool, then the phase breakdown run.
    run_read(meta, domain, kReadRanks, &pool, true, cache);
    const ReadRun best = best_read(meta, domain, kReadRanks, &pool, true, cache, kRuns);

    // A/B: serial vs pooled serving at 2 ranks (32 leaves per aggregator).
    // The runs are interleaved so slow drift of the host (page cache,
    // frequency scaling) lands on both sides equally; each side keeps its
    // best serve-phase time.
    ReadRun serve_serial;
    ReadRun serve_pool;
    double best_serial = 1e30;
    double best_pool = 1e30;
    for (int i = 0; i < kRuns; ++i) {
        const ReadRun s = run_read(meta, domain, 2, nullptr, true, cache);
        if (s.slowest.serve < best_serial) {
            best_serial = s.slowest.serve;
            serve_serial = s;
        }
        const ReadRun p = run_read(meta, domain, 2, &pool, true, cache);
        if (p.slowest.serve < best_pool) {
            best_pool = p.slowest.serve;
            serve_pool = p;
        }
    }

    // A/B: request messages, per-leaf vs coalesced (counts are
    // deterministic, so a single timed run each suffices).
    const ReadRun per_leaf = run_read(meta, domain, kReadRanks, &pool, false, cache);
    const ReadRun coalesced = run_read(meta, domain, kReadRanks, &pool, true, cache);

    const ReadPhaseTimings& t = best.slowest;
    const std::vector<std::pair<const char*, double>> phases = {
        {"read.metadata", t.metadata}, {"read.request", t.request},
        {"read.serve", t.serve},       {"read.merge", t.merge},
        {"read.local", t.local},       {"read.total", t.total()},
    };
    const double payload =
        static_cast<double>(kParticles) * (12.0 + 8.0 * kAttrs);  // xyz + attrs

    if (bench::has_flag(argc, argv, "--json")) {
        const char* out = bench::flag_value(argc, argv, "--out", "BENCH_read.json");
        bench::JsonBenchWriter writer;
        const int threads = static_cast<int>(pool.num_threads()) + 1;
        for (const auto& [name, seconds] : phases) {
            writer.add(bench::JsonBenchResult{
                name, kParticles, 1e9 * seconds / static_cast<double>(kParticles),
                "ns/op", seconds > 0 ? payload / seconds : 0.0, threads});
        }
        writer.add(bench::JsonBenchResult{
            "read.serve_serial", kParticles,
            1e9 * serve_serial.slowest.serve / static_cast<double>(kParticles), "ns/op",
            serve_serial.slowest.serve > 0 ? payload / serve_serial.slowest.serve : 0.0,
            1});
        writer.add(bench::JsonBenchResult{
            "read.serve_pool", kParticles,
            1e9 * serve_pool.slowest.serve / static_cast<double>(kParticles), "ns/op",
            serve_pool.slowest.serve > 0 ? payload / serve_pool.slowest.serve : 0.0,
            threads});
        // `n` is the message count, which is what the gate compares; these
        // rows measure no per-op latency, so ns_op is 0 and the unit says so.
        writer.add(bench::JsonBenchResult{"read.msgs_per_leaf", per_leaf.request_msgs,
                                          0.0, "msgs", 0.0, threads});
        writer.add(bench::JsonBenchResult{"read.msgs_coalesced",
                                          coalesced.request_msgs, 0.0, "msgs", 0.0,
                                          threads});
        writer.write(out);
    } else {
        bench::Table table({"phase", "seconds", "ns/particle"});
        for (const auto& [name, seconds] : phases) {
            table.add_row({name, bench::fmt(seconds, 4),
                           bench::fmt(1e9 * seconds / static_cast<double>(kParticles), 1)});
        }
        table.print();
        std::printf("serve 2-rank: serial %.4fs, pool %.4fs (%.2fx)\n",
                    serve_serial.slowest.serve, serve_pool.slowest.serve,
                    serve_pool.slowest.serve > 0
                        ? serve_serial.slowest.serve / serve_pool.slowest.serve
                        : 0.0);
        std::printf("request msgs at %d ranks: per-leaf %llu, coalesced %llu\n",
                    kReadRanks, static_cast<unsigned long long>(per_leaf.request_msgs),
                    static_cast<unsigned long long>(coalesced.request_msgs));
    }

    std::filesystem::remove_all(dir);
    return 0;
}
