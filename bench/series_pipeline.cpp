// Incremental-series bench: 50-step slowly-evolving Coal Boiler and Dam
// Break series written twice through the in-process 8-rank pipeline — once
// as full rewrites (plain write_particles per step) and once through
// SeriesWriter's incremental path (plan reuse + delta treelets + periodic
// keyframes) — reporting steady-state bytes per step, slowest-rank
// write.total per step, and the delta-hit rate.
//
// "Slowly evolving" means what the paper's dump loops look like when the
// dump cadence is high relative to the simulation's motion: a base
// snapshot whose particles mostly sit still between dumps while a
// spatially localized hot region (the active jet / collapse front) keeps
// moving. Each step jitters only the particles inside a hot box around
// the population centroid; everything else — counts, bounds, attribute
// ranges — stays fixed, so unchanged treelets should hash clean and the
// incremental writer should reference them instead of rewriting.
//
// `series_pipeline --json [--out FILE]` emits bat-bench-v1 JSON to
// BENCH_series.json; tools/bench_check gates the delta-vs-full byte and
// write.total ratios (see docs/PERFORMANCE.md). A plain run prints tables.

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/series.hpp"
#include "io/writer.hpp"
#include "test_output_free.hpp"
#include "util/thread_pool.hpp"
#include "vmpi/comm.hpp"
#include "workloads/boiler.hpp"
#include "workloads/dambreak.hpp"
#include "workloads/decomposition.hpp"

using namespace bat;

namespace {

constexpr int kRanks = 8;
constexpr int kSteps = 50;

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Uniform float in [-1, 1) from a hash stream.
float signed_unit(std::uint64_t h) {
    return 2.0f * static_cast<float>(h >> 40) / static_cast<float>(1u << 24) - 1.0f;
}

/// A slowly-evolving series: a fixed base population plus a hot box around
/// the population centroid whose members get re-jittered every step. The
/// jitter is clamped to the hot box, so the cold particles pin every
/// leaf's position bounds and attribute ranges across the series.
struct SlowSeries {
    ParticleSet base;
    Box hot_box;
    std::vector<std::uint32_t> hot;  // indices of particles inside hot_box
    GridDecomp decomp;

    /// Materialize the per-rank particle sets of step `s` (step 0 == base).
    std::vector<ParticleSet> step(int s, std::uint64_t seed) const {
        ParticleSet global = base;
        if (s > 0) {
            const Vec3 lo = hot_box.lower;
            const Vec3 hi = hot_box.upper;
            const Vec3 amp{0.04f * (hi.x - lo.x), 0.04f * (hi.y - lo.y),
                           0.04f * (hi.z - lo.z)};
            auto clamp = [](float v, float a, float b) {
                return v < a ? a : (v > b ? b : v);
            };
            for (const std::uint32_t i : hot) {
                const std::uint64_t h =
                    splitmix64(seed ^ (static_cast<std::uint64_t>(s) << 32 | i));
                Vec3 p = global.position(i);
                p.x = clamp(p.x + amp.x * signed_unit(h), lo.x, hi.x);
                p.y = clamp(p.y + amp.y * signed_unit(splitmix64(h)), lo.y, hi.y);
                p.z = clamp(p.z + amp.z * signed_unit(splitmix64(h + 1)), lo.z, hi.z);
                global.set_position(i, p);
            }
        }
        return partition_particles(global, decomp);
    }
};

SlowSeries make_slow_series(ParticleSet base, int nranks, bool decomp_2d,
                            float hot_half_extent) {
    SlowSeries series;
    series.base = std::move(base);
    const Box bounds = series.base.bounds();
    // Hot box: centered on the population centroid (inside the dense
    // region for both workloads), 2*hot_half_extent of the data extent per
    // axis. The dam break's population is a thin layer along the floor, so
    // its box must be tighter than the boiler's to keep the moving front
    // spatially localized relative to the occupied volume.
    Vec3 centroid{0, 0, 0};
    const std::size_t n = series.base.count();
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 p = series.base.position(i);
        centroid.x += p.x;
        centroid.y += p.y;
        centroid.z += p.z;
    }
    const float inv = n > 0 ? 1.0f / static_cast<float>(n) : 0.0f;
    centroid = {centroid.x * inv, centroid.y * inv, centroid.z * inv};
    const Vec3 half{hot_half_extent * (bounds.upper.x - bounds.lower.x),
                    hot_half_extent * (bounds.upper.y - bounds.lower.y),
                    hot_half_extent * (bounds.upper.z - bounds.lower.z)};
    series.hot_box = Box({centroid.x - half.x, centroid.y - half.y, centroid.z - half.z},
                         {centroid.x + half.x, centroid.y + half.y, centroid.z + half.z});
    for (std::size_t i = 0; i < n; ++i) {
        if (series.hot_box.contains(series.base.position(i))) {
            series.hot.push_back(static_cast<std::uint32_t>(i));
        }
    }
    series.decomp = decomp_2d ? grid_decomp_2d(nranks, bounds)
                              : grid_decomp_3d(nranks, bounds);
    return series;
}

struct StepStats {
    std::uint64_t bytes = 0;          // sum over ranks
    double total_s = 0;               // slowest rank's write total
    std::uint64_t treelets_clean = 0;
    std::uint64_t treelets_written = 0;
};

struct SeriesRun {
    std::vector<StepStats> steps;
};

/// One pass over the series. `incremental` selects SeriesWriter (plan
/// reuse + delta treelets) versus a plain per-step write_particles (the
/// full-rewrite baseline).
SeriesRun run_series(const std::filesystem::path& dir, const SlowSeries& series,
                     const std::string& name, bool incremental, std::uint64_t seed,
                     ThreadPool* pool) {
    SeriesRun run;
    run.steps.resize(kSteps);
    std::mutex mutex;
    // Step data is materialized by rank 0 between barriers; the per-rank
    // sets only need to live for the duration of one collective write.
    std::vector<ParticleSet> per_rank;
    vmpi::Runtime::run(kRanks, [&](vmpi::Comm& comm) {
        WriterConfig config;
        config.directory = dir;
        config.basename = name;
        config.tree.target_file_size = 1 << 20;
        config.pool = pool;
        SeriesWriter writer(config);
        const int r = comm.rank();
        for (int s = 0; s < kSteps; ++s) {
            comm.barrier();
            if (r == 0) {
                per_rank = series.step(s, seed);
            }
            comm.barrier();
            WriteResult wr;
            if (incremental) {
                wr = writer.write_timestep(comm, s, per_rank[static_cast<std::size_t>(r)],
                                           series.decomp.rank_box(r));
            } else {
                WriterConfig step_config = config;
                step_config.basename = name + "_full_t" + std::to_string(s);
                wr = write_particles(comm, per_rank[static_cast<std::size_t>(r)],
                                     series.decomp.rank_box(r), step_config);
            }
            std::lock_guard<std::mutex> lock(mutex);
            StepStats& st = run.steps[static_cast<std::size_t>(s)];
            st.bytes += wr.bytes_written;
            st.total_s = std::max(st.total_s, wr.timings.total());
            st.treelets_clean += wr.delta_treelets_clean;
            st.treelets_written += wr.delta_treelets_written;
        }
        if (incremental) {
            writer.finalize(comm);
        }
    });
    return run;
}

struct SeriesSummary {
    double steady_bytes_full = 0;   // mean bytes per steady-state step
    double steady_bytes_delta = 0;
    double total_full_s = 0;        // mean slowest-rank write total per step
    double total_delta_s = 0;
    std::uint64_t treelets_clean = 0;
    std::uint64_t treelets_written = 0;
    std::uint64_t particles = 0;
    int steady_steps = 0;
};

/// Steady-state steps: everything but the first step and the periodic
/// keyframes, i.e. the steps the incremental writer may write as deltas.
bool is_steady(int s) {
    DeltaWriteConfig defaults;
    return s > 0 && s % defaults.keyframe_interval != 0;
}

SeriesSummary summarize(const SeriesRun& full, const SeriesRun& delta,
                        std::uint64_t particles) {
    SeriesSummary sum;
    sum.particles = particles;
    for (int s = 0; s < kSteps; ++s) {
        const StepStats& f = full.steps[static_cast<std::size_t>(s)];
        const StepStats& d = delta.steps[static_cast<std::size_t>(s)];
        if (!is_steady(s)) {
            continue;
        }
        sum.steady_bytes_full += static_cast<double>(f.bytes);
        sum.steady_bytes_delta += static_cast<double>(d.bytes);
        sum.total_full_s += f.total_s;
        sum.total_delta_s += d.total_s;
        sum.treelets_clean += d.treelets_clean;
        sum.treelets_written += d.treelets_written;
        ++sum.steady_steps;
    }
    const double n = sum.steady_steps > 0 ? sum.steady_steps : 1;
    sum.steady_bytes_full /= n;
    sum.steady_bytes_delta /= n;
    sum.total_full_s /= n;
    sum.total_delta_s /= n;
    return sum;
}

SeriesSummary bench_workload(const char* tag, ParticleSet base, bool decomp_2d,
                             float hot_half_extent, std::uint64_t seed,
                             ThreadPool* pool) {
    const auto dir = bench::scratch_dir(std::string("series_pipeline_") + tag);
    SlowSeries series = make_slow_series(std::move(base), kRanks, decomp_2d,
                                         hot_half_extent);
    std::fprintf(stderr,
                 "[bench] %s: %zu particles, %zu hot (%.1f%%), %d steps x %d ranks\n",
                 tag, series.base.count(), series.hot.size(),
                 100.0 * static_cast<double>(series.hot.size()) /
                     static_cast<double>(series.base.count()),
                 kSteps, kRanks);
    const SeriesRun full = run_series(dir, series, std::string(tag) + "_full",
                                      /*incremental=*/false, seed, pool);
    const SeriesRun delta = run_series(dir, series, std::string(tag) + "_delta",
                                       /*incremental=*/true, seed, pool);
    const SeriesSummary sum = summarize(full, delta, series.base.count());
    std::filesystem::remove_all(dir);
    return sum;
}

void add_rows(bench::JsonBenchWriter* writer, const char* tag, const SeriesSummary& s,
              int threads) {
    const std::string prefix = std::string("series.") + tag + ".";
    auto count_row = [&](const char* name, std::uint64_t n, const char* unit) {
        writer->add(bench::JsonBenchResult{prefix + name, n, 0.0, unit, 0.0, threads});
    };
    auto total_row = [&](const char* name, double seconds, double bytes) {
        writer->add(bench::JsonBenchResult{
            prefix + name, s.particles,
            1e9 * seconds / static_cast<double>(s.particles), "ns/op",
            seconds > 0 ? bytes / seconds : 0.0, threads});
    };
    count_row("steady_bytes_full", static_cast<std::uint64_t>(s.steady_bytes_full),
              "bytes");
    count_row("steady_bytes_delta", static_cast<std::uint64_t>(s.steady_bytes_delta),
              "bytes");
    total_row("write_total_full", s.total_full_s, s.steady_bytes_full);
    total_row("write_total_delta", s.total_delta_s, s.steady_bytes_delta);
    count_row("treelets_clean", s.treelets_clean, "treelets");
    count_row("treelets_written", s.treelets_written, "treelets");
    const std::uint64_t judged = s.treelets_clean + s.treelets_written;
    count_row("delta_hit_pct",
              judged > 0 ? (100 * s.treelets_clean + judged / 2) / judged : 0, "pct");
}

void print_summary(const char* tag, const SeriesSummary& s) {
    bench::Table table({"metric", "full", "delta", "ratio"});
    table.add_row({"steady bytes/step (MB)", bench::fmt(s.steady_bytes_full / 1e6, 2),
                   bench::fmt(s.steady_bytes_delta / 1e6, 2),
                   bench::fmt(s.steady_bytes_delta / s.steady_bytes_full, 3)});
    table.add_row({"write total/step (ms)", bench::fmt(1e3 * s.total_full_s, 2),
                   bench::fmt(1e3 * s.total_delta_s, 2),
                   bench::fmt(s.total_delta_s / s.total_full_s, 3)});
    const std::uint64_t judged = s.treelets_clean + s.treelets_written;
    std::printf("== %s: %d steady steps, treelets %llu clean / %llu written "
                "(%.1f%% hit rate)\n",
                tag, s.steady_steps,
                static_cast<unsigned long long>(s.treelets_clean),
                static_cast<unsigned long long>(s.treelets_written),
                judged > 0 ? 100.0 * static_cast<double>(s.treelets_clean) /
                                 static_cast<double>(judged)
                           : 0.0);
    table.print();
}

}  // namespace

int main(int argc, char** argv) {
    ThreadPool pool(ThreadPool::default_concurrency());
    const int threads = static_cast<int>(pool.num_threads()) + 1;

    // Base snapshots sized for single-node runs: the boiler early in its
    // injection history, the dam break mid-collapse (its count is fixed
    // over the series anyway).
    BoilerConfig boiler;
    boiler.particles_at_start = 120'000;
    boiler.particles_at_end = 1'080'000;  // keep the paper's 9x growth ratio
    DamBreakConfig dam;
    dam.num_particles = 120'000;

    const SeriesSummary boiler_sum =
        bench_workload("boiler", make_boiler_particles(boiler, boiler.t_start),
                       /*decomp_2d=*/false, /*hot_half_extent=*/0.15f, 0xb01'1e5,
                       &pool);
    const SeriesSummary dam_sum =
        bench_workload("dambreak", make_dambreak_particles(dam, dam.t_final / 2),
                       /*decomp_2d=*/true, /*hot_half_extent=*/0.07f, 0xda'3b7e,
                       &pool);

    if (bench::has_flag(argc, argv, "--json")) {
        const char* out = bench::flag_value(argc, argv, "--out", "BENCH_series.json");
        bench::JsonBenchWriter writer;
        add_rows(&writer, "boiler", boiler_sum, threads);
        add_rows(&writer, "dambreak", dam_sum, threads);
        writer.write(out);
    } else {
        print_summary("boiler", boiler_sum);
        print_summary("dambreak", dam_sum);
    }
    return 0;
}
