#pragma once
// Scratch-directory helper for functional benches that write real BAT
// files: a per-bench directory under TMPDIR, wiped at process start so
// repeated runs do not accumulate files.

#include <cstdlib>
#include <filesystem>
#include <string>

namespace bat::bench {

inline std::filesystem::path scratch_dir(const std::string& name) {
    const char* tmp = std::getenv("TMPDIR");
    std::filesystem::path dir =
        (tmp != nullptr ? std::filesystem::path(tmp)
                        : std::filesystem::temp_directory_path()) /
        ("bat_bench_" + name);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir);
    return dir;
}

}  // namespace bat::bench
