#pragma once
// Shared helpers for the table/figure reproduction benches: machine + rank
// series, workload setup, calibration caching, and aligned table printing.
//
// Scaling note: functional benches (Tables I/II, overhead) build *real* BAT
// files, so their particle counts are scaled down from the paper's 4.6M-41.5M
// (Coal Boiler) and 2M/8M (Dam Break) by default to keep single-node run
// times reasonable. Set BAT_BENCH_SCALE=1.0 to run at paper scale. The
// performance-model benches (Figs 5-7, 9-12) always run the aggregation
// algorithms at the paper's full rank/particle counts — only count
// *estimation* uses strided sampling.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "simio/calibrate.hpp"
#include "simio/machine.hpp"
#include "simio/pipeline_model.hpp"
#include "workloads/decomposition.hpp"

namespace bat::bench {

/// Scale factor for functional (real-file) benches.
inline double bench_scale() {
    if (const char* env = std::getenv("BAT_BENCH_SCALE")) {
        return std::atof(env);
    }
    return 0.25;
}

/// The paper's weak-scaling rank series (Fig 5/6/7).
inline std::vector<int> stampede2_rank_series() {
    return {128, 384, 768, 1536, 3072, 6144, 12288, 24576};
}
inline std::vector<int> summit_rank_series() {
    return {168, 672, 1344, 2688, 5376, 10752, 21504, 43008};
}

/// The paper's per-rank uniform workload: 32k particles, 3*f32 + 14*f64.
inline constexpr std::uint64_t kUniformParticlesPerRank = 32'768;
inline constexpr std::uint64_t kUniformBpp = 12 + 14 * 8;

inline std::vector<RankInfo> uniform_rank_infos(int nranks) {
    const GridDecomp decomp = grid_decomp_3d(nranks, Box({0, 0, 0}, {1, 1, 1}));
    const std::vector<std::uint64_t> counts(static_cast<std::size_t>(nranks),
                                            kUniformParticlesPerRank);
    return make_rank_infos(decomp, counts);
}

/// Calibrate the BAT build throughput once per process (used by every
/// performance-model bench so breakdowns reflect this machine's builder).
inline const simio::Calibration& calibration() {
    static const simio::Calibration cal = [] {
        std::fprintf(stderr, "[bench] calibrating BAT build throughput...\n");
        const simio::Calibration c = simio::calibrate_bat_build();
        std::fprintf(stderr, "[bench] build throughput %.0f MB/s, layout overhead %.2f%%\n",
                      c.bat_build_bps / 1e6, 100.0 * c.layout_overhead);
        return c;
    }();
    return cal;
}

inline simio::TwoPhaseParams two_phase_params(const simio::MachineConfig& machine,
                                              AggStrategy strategy, std::uint64_t target,
                                              std::uint64_t bytes_per_particle) {
    simio::TwoPhaseParams params;
    params.machine = machine;
    params.strategy = strategy;
    params.tree.target_file_size = target;
    params.tree.bytes_per_particle = bytes_per_particle;
    params.bat_build_bps = calibration().bat_build_bps;
    params.layout_overhead = calibration().layout_overhead;
    return params;
}

/// Simple aligned table printer.
class Table {
public:
    explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print() const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            widths[c] = headers_[c].size();
        }
        for (const auto& row : rows_) {
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
                widths[c] = std::max(widths[c], row[c].size());
            }
        }
        auto print_row = [&](const std::vector<std::string>& row) {
            for (std::size_t c = 0; c < row.size(); ++c) {
                std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        std::size_t total = 0;
        for (std::size_t w : widths) {
            total += w + 2;
        }
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto& row : rows_) {
            print_row(row);
        }
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string fmt_mb(std::uint64_t bytes) {
    return fmt(static_cast<double>(bytes) / (1 << 20), 1);
}

// ---- machine-readable results (--json, docs/PERFORMANCE.md) ---------------
// Perf-regression harness: benches emit one JSON document per run so CI and
// later PRs can diff before/after numbers mechanically. Schema
// "bat-bench-v1": {"schema": ..., "benchmarks": [{"name", "n", "ns_op",
// "unit", "bytes_per_sec", "threads"}, ...]} — ns_op is nanoseconds per
// element (best of the measured repetitions), bytes_per_sec the payload
// throughput (0 when a kernel has no natural byte volume). `unit` names
// what ns_op measures; rows reporting a count rather than a rate (e.g.
// message tallies) say so ("msgs") and carry ns_op = 0, and tools/bench_check
// only requires a positive ns_op on "ns/op" rows.

struct JsonBenchResult {
    std::string name;
    std::uint64_t n = 0;
    double ns_op = 0.0;
    std::string unit = "ns/op";
    double bytes_per_sec = 0.0;
    int threads = 1;
};

class JsonBenchWriter {
public:
    void add(JsonBenchResult r) { results_.push_back(std::move(r)); }

    void write(const std::filesystem::path& path) const {
        std::FILE* f = std::fopen(path.string().c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                         path.string().c_str());
            std::exit(1);
        }
        std::fprintf(f, "{\n  \"schema\": \"bat-bench-v1\",\n  \"benchmarks\": [\n");
        for (std::size_t i = 0; i < results_.size(); ++i) {
            const JsonBenchResult& r = results_[i];
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"n\": %llu, \"ns_op\": %.3f, "
                         "\"unit\": \"%s\", \"bytes_per_sec\": %.0f, \"threads\": %d}%s\n",
                         r.name.c_str(), static_cast<unsigned long long>(r.n), r.ns_op,
                         r.unit.c_str(), r.bytes_per_sec, r.threads,
                         i + 1 < results_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "[bench] wrote %zu results to %s\n", results_.size(),
                     path.string().c_str());
    }

private:
    std::vector<JsonBenchResult> results_;
};

inline bool has_flag(int argc, char** argv, const char* flag) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return true;
        }
    }
    return false;
}

/// Value of `--flag value`, or `fallback` when absent.
inline const char* flag_value(int argc, char** argv, const char* flag,
                              const char* fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return argv[i + 1];
        }
    }
    return fallback;
}

/// Best-of-`reps` wall seconds of fn().
template <typename F>
double best_seconds(int reps, F&& fn) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const double dt =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        best = std::min(best, dt);
    }
    return best;
}

}  // namespace bat::bench
