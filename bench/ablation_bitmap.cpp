// Ablation of the 32-bit bitmap index (paper §III-C2 / §VII-A: "the
// effectiveness of limiting bitmaps to just 32 bits warrants further
// evaluation"). For attribute queries of varying selectivity on real BAT
// data we report:
//   - how much of the tree the bitmaps prune,
//   - the false-positive rate the final exact check has to absorb,
//   - points tested vs a layout without bitmap pruning (= every point in
//     the spatially matching subtree).
// Run on both spatially correlated attributes (the favorable case the
// paper assumes) and a spatially shuffled attribute (its stated
// limitation, where bitmaps should degrade).

#include <cmath>

#include "bench_common.hpp"
#include "core/bat_query.hpp"
#include "util/rng.hpp"
#include "workloads/uniform.hpp"

using namespace bat;
using namespace bat::bench;

namespace {

void run_queries(const char* label, const BatFile& file, std::size_t attr,
                 std::uint64_t total_points, double center_frac = 0.45) {
    std::printf("\n--- %s ---\n", label);
    Table table({"selectivity", "emitted", "tested", "false_pos%", "pruned_nodes",
                 "tested_vs_no_bitmap%"});
    const auto [lo, hi] = file.attr_range(attr);
    for (const double width : {0.5, 0.2, 0.05, 0.01}) {
        BatQuery query;
        const double qlo = lo + center_frac * (hi - lo) * (1.0 - width);
        query.attr_filters.push_back(
            {static_cast<std::uint32_t>(attr), qlo, qlo + width * (hi - lo)});
        QueryStats stats;
        query_bat(file, query, [](Vec3, std::span<const double>) {}, &stats);
        const double false_pos =
            stats.points_tested > 0
                ? 100.0 * static_cast<double>(stats.points_tested - stats.points_emitted) /
                      static_cast<double>(stats.points_tested)
                : 0.0;
        table.add_row({fmt(width, 2), std::to_string(stats.points_emitted),
                       std::to_string(stats.points_tested), fmt(false_pos, 1),
                       std::to_string(stats.pruned_by_bitmap),
                       fmt(100.0 * static_cast<double>(stats.points_tested) /
                               static_cast<double>(total_points),
                           1)});
    }
    table.print();
}

}  // namespace

int main() {
    const Box domain({0, 0, 0}, {1, 1, 1});
    const std::size_t n = static_cast<std::size_t>(800'000 * bench_scale());

    // Favorable case: spatially correlated attribute (generator default).
    ParticleSet correlated = make_uniform_particles(domain, n, 2, 11);
    // Adverse case: same values, spatially shuffled (no coherence).
    ParticleSet shuffled = correlated;
    {
        Pcg32 rng(99);
        auto attr = shuffled.attr_mut(0);
        for (std::size_t i = attr.size(); i > 1; --i) {
            std::swap(attr[i - 1], attr[rng.next_bounded(static_cast<std::uint32_t>(i))]);
        }
    }

    // Skewed-but-correlated case: equal-width binning collapses, the
    // §VII-A equal-depth scheme keeps resolving.
    ParticleSet skewed = make_uniform_particles(domain, n, 2, 12);
    for (std::size_t i = 0; i < skewed.count(); ++i) {
        skewed.attr_mut(0)[i] =
            std::pow(static_cast<double>(skewed.position(i).x), 8.0);
    }
    ParticleSet skewed_copy = skewed;
    BatConfig depth_config;
    depth_config.binning = BinningScheme::equal_depth;

    const auto corr_bytes = serialize_bat(build_bat(std::move(correlated), BatConfig{}));
    const auto shuf_bytes = serialize_bat(build_bat(std::move(shuffled), BatConfig{}));
    const auto skw_bytes = serialize_bat(build_bat(std::move(skewed), BatConfig{}));
    const auto skd_bytes = serialize_bat(build_bat(std::move(skewed_copy), depth_config));
    const BatFile corr_file{std::span<const std::byte>(corr_bytes)};
    const BatFile shuf_file{std::span<const std::byte>(shuf_bytes)};
    const BatFile skw_file{std::span<const std::byte>(skw_bytes)};
    const BatFile skd_file{std::span<const std::byte>(skd_bytes)};

    std::printf("=== Ablation: 32-bit bitmap attribute filtering (%zu points) ===\n", n);
    run_queries("spatially correlated attribute (paper's assumption)", corr_file, 0, n);
    run_queries("spatially shuffled attribute (paper's stated limitation)", shuf_file, 0,
                n);
    // Query near the dense low end of the skewed distribution, where the
    // equal-width bins collapse into bin 0.
    run_queries("skewed attribute, equal-width bins (paper default)", skw_file, 0, n,
                0.002);
    run_queries("skewed attribute, equal-depth bins (§VII-A extension)", skd_file, 0, n,
                0.002);
    std::printf("\nExpected: strong pruning and low false-positive rates on the "
                "correlated attribute; little-to-no pruning on the shuffled one; "
                "equal-depth bins restore pruning on skewed value distributions.\n");
    return 0;
}
