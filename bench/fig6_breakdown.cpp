// Reproduces paper Fig 6: timing breakdowns of our pipeline components on
// the uniform weak-scaling workload at 8 MB vs 64 MB target sizes, on both
// machine models.
//
// Expected shape (paper): the bulk of the time goes to writing aggregator
// files, constructing the BATs, and transferring data; the 64 MB
// configuration spends a relatively consistent share in each component as
// the scale grows, whereas 8 MB spends a growing share in writes at high
// core counts.

#include "bench_common.hpp"

using namespace bat;
using namespace bat::bench;

int main() {
    for (const simio::MachineConfig& machine : {simio::stampede2_like(),
                                                simio::summit_like()}) {
        const std::vector<int> series = machine.fs == simio::FsKind::lustre
                                            ? stampede2_rank_series()
                                            : summit_rank_series();
        for (const std::uint64_t target : {8ull << 20, 64ull << 20}) {
            std::printf("\n=== Fig 6 (%s, %llu MB target): component share of write time "
                        "===\n",
                        machine.name.c_str(),
                        static_cast<unsigned long long>(target >> 20));
            Table table({"ranks", "total_s", "gather%", "tree%", "scatter%", "transfer%",
                         "build%", "write%", "meta%"});
            for (int nranks : series) {
                const std::vector<RankInfo> ranks = uniform_rank_infos(nranks);
                const simio::SimResult r = simio::simulate_write(
                    ranks, two_phase_params(machine, AggStrategy::adaptive, target,
                                            kUniformBpp));
                auto pct = [&](const char* phase) {
                    return fmt(100.0 * r.phase_seconds(phase) / r.seconds, 1);
                };
                table.add_row({std::to_string(nranks), fmt(r.seconds, 3), pct("gather"),
                               pct("tree_build"), pct("scatter"), pct("transfer"),
                               pct("bat_build"), pct("file_write"), pct("metadata")});
            }
            table.print();
        }
    }
    return 0;
}
