// Measures the cost of the obs tracing layer (docs/OBSERVABILITY.md):
//
//   1. ns per BAT_TRACE_SCOPE span with tracing disabled (the always-paid
//      branch) and enabled (ring-buffer recording);
//   2. wall time of a real 8-rank write+read pipeline with tracing off vs
//      on, i.e. the end-to-end overhead a traced run pays;
//   3. the same pipeline with the always-on run-health layer armed (stall
//      watchdog + run-report accounting, tracing off), the configuration
//      production runs keep enabled permanently;
//   4. the same pipeline with per-query tracing armed (obs/query_trace.hpp:
//      ring records, serve spans, cost slots — trace rings off), gated at
//      <= 5% over the all-off baseline;
//   5. the same pipeline with the sampling CPU profiler armed at 97 Hz
//      (obs/prof.hpp: per-thread CPU-clock timers + signal-handler sample
//      capture + span tracking), gated at <= 5% over the all-off baseline.
//
// The acceptance bars are <1% pipeline overhead with tracing disabled and
// <1% with the watchdog + report armed; the disabled span path is a relaxed
// atomic load and a branch, the health hooks one relaxed increment each.
//
// `obs_overhead --json [--out FILE]` additionally emits bat-bench-v1 rows
// read.total_off / read.total_querytrace / read.total_prof so
// tools/bench_check gates the query-tracing and profiler overheads
// mechanically in CI.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "bench_common.hpp"
#include "io/reader.hpp"
#include "io/writer.hpp"
#include "obs/health.hpp"
#include "obs/prof.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"
#include "vmpi/comm.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

using namespace bat;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// ns per iteration of a loop whose body is one BAT_TRACE_SCOPE.
double span_cost_ns(std::size_t iters) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
        BAT_TRACE_SCOPE("bench.span");
    }
    return seconds_since(t0) * 1e9 / static_cast<double>(iters);
}

/// One full 8-rank write + read cycle; returns wall seconds.
double pipeline_seconds(const std::filesystem::path& dir,
                        const std::vector<ParticleSet>& per_rank,
                        const GridDecomp& decomp) {
    const int nranks = static_cast<int>(per_rank.size());
    const auto t0 = Clock::now();
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        WriterConfig config;
        config.directory = dir;
        config.basename = "obsbench";
        config.tree.target_file_size = 1 << 20;
        const int r = comm.rank();
        const WriteResult wr = write_particles(
            comm, per_rank[static_cast<std::size_t>(r)], decomp.rank_box(r), config);
        read_particles(comm, wr.metadata_path, decomp.rank_read_box(r));
    });
    return seconds_since(t0);
}

double min_of_runs(int runs, const std::filesystem::path& dir,
                   const std::vector<ParticleSet>& per_rank, const GridDecomp& decomp) {
    double best = 1e30;
    for (int i = 0; i < runs; ++i) {
        best = std::min(best, pipeline_seconds(dir, per_rank, decomp));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    constexpr std::size_t kSpanIters = 1'000'000;

    obs::set_trace_enabled(false);
    const double disabled_ns = span_cost_ns(kSpanIters);

    obs::set_trace_enabled(true);
    const double enabled_ns = span_cost_ns(kSpanIters);
    obs::set_trace_enabled(false);
    obs::reset_trace();

    std::printf("=== obs tracing overhead ===\n");
    std::printf("span cost: %.1f ns disabled, %.1f ns enabled (%zu iters)\n",
                disabled_ns, enabled_ns, kSpanIters);

    const auto dir = std::filesystem::temp_directory_path() /
                     ("bat_obs_overhead_" + std::to_string(getpid()));
    std::filesystem::create_directories(dir);

    const Box domain({0, 0, 0}, {4, 4, 4});
    const int nranks = 8;
    const GridDecomp decomp = grid_decomp_3d(nranks, domain);
    const ParticleSet global = make_uniform_particles(domain, 120'000, 4, 42);
    const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);

    const int runs = 5;
    min_of_runs(1, dir, per_rank, decomp);  // warm up page cache + pool
    const double off_s = min_of_runs(runs, dir, per_rank, decomp);

    obs::set_trace_enabled(true);
    const double on_s = min_of_runs(runs, dir, per_rank, decomp);
    obs::set_trace_enabled(false);
    obs::reset_trace();

    std::printf("8-rank write+read pipeline (best of %d): %.3f s off, %.3f s on, "
                "overhead %.2f%%\n",
                runs, off_s, on_s, 100.0 * (on_s - off_s) / off_s);

    // The always-on configuration: watchdog armed (generous interval, so it
    // never trips here) + run-report accounting, tracing off.
    obs::reset_run_report();
    obs::WatchdogOptions dog;
    dog.interval = std::chrono::seconds(30);
    obs::start_watchdog(dog);
    const double health_s = min_of_runs(runs, dir, per_rank, decomp);
    obs::stop_watchdog();

    const double health_pct = 100.0 * (health_s - off_s) / off_s;
    std::printf("8-rank write+read pipeline with watchdog+report armed: %.3f s, "
                "overhead %.2f%% (%" PRIu64 " watchdog trips)\n",
                health_s, health_pct, obs::watchdog_trips());
    if (obs::watchdog_trips() != 0) {
        std::fprintf(stderr, "FAIL: watchdog tripped on a clean benchmark run\n");
        return 1;
    }
    // Min-of-5 wall clocks still jitter by a few percent on shared CI boxes;
    // gate at 5% so only a real regression (the bar itself is <1% on a quiet
    // machine) fails the run.
    if (health_pct > 5.0) {
        std::fprintf(stderr, "FAIL: run-health layer overhead %.2f%% > 5%%\n",
                     health_pct);
        return 1;
    }

    // Per-query tracing armed: every read_particles mints a context, ships
    // it in each request, records serve spans and a QueryRecord. No log file
    // — arming the rings alone is the recording cost a production run pays.
    obs::set_query_trace_enabled(true);
    const double qtrace_s = min_of_runs(runs, dir, per_rank, decomp);
    obs::set_query_trace_enabled(false);
    obs::reset_query_trace();

    const double qtrace_pct = 100.0 * (qtrace_s - off_s) / off_s;
    std::printf("8-rank write+read pipeline with query tracing armed: %.3f s, "
                "overhead %.2f%%\n",
                qtrace_s, qtrace_pct);
    if (qtrace_pct > 5.0) {
        std::fprintf(stderr, "FAIL: query tracing overhead %.2f%% > 5%%\n", qtrace_pct);
        return 1;
    }

    // Sampling profiler armed at the CI rate: SIGPROF delivery + handler
    // sample capture + span-stack tracking on every rank/pool thread.
    double prof_s = -1.0;
    if (obs::profiler_supported()) {
        obs::ProfOptions popts;
        popts.hz = 97.0;
        obs::start_profiler(popts);
        prof_s = min_of_runs(runs, dir, per_rank, decomp);
        const obs::ProfTotals totals = obs::prof_totals();
        obs::stop_profiler();

        const double prof_pct = 100.0 * (prof_s - off_s) / off_s;
        std::printf("8-rank write+read pipeline with profiler armed @97Hz: %.3f s, "
                    "overhead %.2f%% (%" PRIu64 " samples, %" PRIu64 " dropped)\n",
                    prof_s, prof_pct, totals.samples, totals.dropped);
        if (prof_pct > 5.0) {
            std::fprintf(stderr, "FAIL: profiler overhead %.2f%% > 5%%\n", prof_pct);
            return 1;
        }
        if (totals.samples == 0) {
            std::fprintf(stderr, "FAIL: profiler armed but captured no samples\n");
            return 1;
        }
    } else {
        std::printf("8-rank write+read pipeline with profiler: skipped "
                    "(per-thread CPU timers unsupported on this platform)\n");
    }

    if (bench::has_flag(argc, argv, "--json")) {
        const char* out = bench::flag_value(argc, argv, "--out", "BENCH_obs.json");
        bench::JsonBenchWriter writer;
        const std::uint64_t n = 120'000;
        writer.add(bench::JsonBenchResult{
            "read.total_off", n, 1e9 * off_s / static_cast<double>(n), "ns/op", 0.0, 1});
        writer.add(bench::JsonBenchResult{"read.total_querytrace", n,
                                          1e9 * qtrace_s / static_cast<double>(n),
                                          "ns/op", 0.0, 1});
        if (prof_s > 0) {
            writer.add(bench::JsonBenchResult{"read.total_prof", n,
                                              1e9 * prof_s / static_cast<double>(n),
                                              "ns/op", 0.0, 1});
        }
        writer.write(out);
    }

    std::filesystem::remove_all(dir);
    return 0;
}
