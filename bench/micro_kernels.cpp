// google-benchmark micro-kernels for the library's hot paths: Morton
// encode/decode, Karras radix-tree construction, BAT build stages, bitmap
// operations, particle (de)serialization, and query traversal. These give
// per-component throughput numbers to sanity-check the calibrated
// performance model and track regressions.

#include <benchmark/benchmark.h>

#include "core/bat_builder.hpp"
#include "core/bat_file.hpp"
#include "core/bat_query.hpp"
#include "core/karras.hpp"
#include "util/morton.hpp"
#include "util/rng.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

void BM_MortonEncode(benchmark::State& state) {
    Pcg32 rng(1);
    std::vector<std::uint32_t> coords(3 * 1024);
    for (auto& c : coords) {
        c = rng.next_u32() & ((1u << kMortonBitsPerAxis) - 1);
    }
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < coords.size(); i += 3) {
            acc ^= morton_encode(coords[i], coords[i + 1], coords[i + 2]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MortonEncode);

void BM_MortonDecode(benchmark::State& state) {
    Pcg32 rng(2);
    std::vector<std::uint64_t> codes(1024);
    for (auto& c : codes) {
        c = rng.next_u64() & ((std::uint64_t{1} << kMortonBits) - 1);
    }
    for (auto _ : state) {
        std::uint32_t x, y, z, acc = 0;
        for (std::uint64_t c : codes) {
            morton_decode(c, x, y, z);
            acc ^= x ^ y ^ z;
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MortonDecode);

void BM_KarrasBuild(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Pcg32 rng(3);
    std::set<std::uint64_t> keys;
    while (keys.size() < n) {
        keys.insert(rng.next_u64() & ((std::uint64_t{1} << 30) - 1));
    }
    const std::vector<std::uint64_t> codes(keys.begin(), keys.end());
    for (auto _ : state) {
        const RadixTree tree = build_radix_tree(codes, 30);
        benchmark::DoNotOptimize(tree.internal.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KarrasBuild)->Arg(1024)->Arg(16384);

void BM_BatBuild(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const ParticleSet base =
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), n, 7, 4);
    for (auto _ : state) {
        ParticleSet copy = base;
        const BatData bat = build_bat(std::move(copy), BatConfig{});
        benchmark::DoNotOptimize(bat.treelets.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(base.payload_bytes()));
}
BENCHMARK(BM_BatBuild)->Arg(50'000)->Arg(200'000)->Unit(benchmark::kMillisecond);

void BM_BatSerialize(benchmark::State& state) {
    const BatData bat = build_bat(
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 100'000, 7, 5), BatConfig{});
    for (auto _ : state) {
        const auto bytes = serialize_bat(bat);
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bat.particles.payload_bytes()));
}
BENCHMARK(BM_BatSerialize)->Unit(benchmark::kMillisecond);

void BM_BitmapForRange(benchmark::State& state) {
    for (auto _ : state) {
        std::uint32_t acc = 0;
        for (int i = 0; i < 1024; ++i) {
            acc ^= bitmap_for_range(i * 0.001, i * 0.001 + 0.05, 0.0, 1.0);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BitmapForRange);

void BM_SpatialQuery(benchmark::State& state) {
    const auto bytes = serialize_bat(build_bat(
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 200'000, 2, 6), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    BatQuery query;
    query.box = Box({0.25f, 0.25f, 0.25f}, {0.75f, 0.75f, 0.75f});
    for (auto _ : state) {
        std::uint64_t n = 0;
        query_bat(file, query, [&n](Vec3, std::span<const double>) { ++n; });
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_SpatialQuery)->Unit(benchmark::kMillisecond);

void BM_AttributeQuery(benchmark::State& state) {
    const auto bytes = serialize_bat(build_bat(
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 200'000, 2, 7), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    const auto [lo, hi] = file.attr_range(0);
    BatQuery query;
    query.attr_filters.push_back({0, lo + 0.48 * (hi - lo), lo + 0.52 * (hi - lo)});
    for (auto _ : state) {
        std::uint64_t n = 0;
        query_bat(file, query, [&n](Vec3, std::span<const double>) { ++n; });
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_AttributeQuery)->Unit(benchmark::kMillisecond);

void BM_ProgressiveCoarseRead(benchmark::State& state) {
    const auto bytes = serialize_bat(build_bat(
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 200'000, 2, 8), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    BatQuery query;
    query.quality_hi = 0.1f;
    for (auto _ : state) {
        std::uint64_t n = 0;
        query_bat(file, query, [&n](Vec3, std::span<const double>) { ++n; });
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_ProgressiveCoarseRead)->Unit(benchmark::kMillisecond);

void BM_ParticleSerialize(benchmark::State& state) {
    const ParticleSet set =
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 100'000, 14, 9);
    for (auto _ : state) {
        const auto bytes = set.to_bytes();
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(set.payload_bytes()));
}
BENCHMARK(BM_ParticleSerialize)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bat

BENCHMARK_MAIN();
