// google-benchmark micro-kernels for the library's hot paths: Morton
// encode/decode, Karras radix-tree construction, BAT build stages, bitmap
// operations, particle (de)serialization, and query traversal. These give
// per-component throughput numbers to sanity-check the calibrated
// performance model and track regressions.
//
// `micro_kernels --json [--out FILE] [--threads N]` instead runs the
// perf-regression kernel suite (sort/encode/reorder/transfer, before- and
// after-optimization variants side by side) and writes bat-bench-v1 JSON to
// BENCH_micro.json for CI and cross-PR diffing; see docs/PERFORMANCE.md.

#include <benchmark/benchmark.h>

#include <numeric>

#include "bench_common.hpp"
#include "core/bat_builder.hpp"
#include "core/bat_file.hpp"
#include "core/bat_query.hpp"
#include "core/karras.hpp"
#include "util/check.hpp"
#include "util/morton.hpp"
#include "util/radix_sort.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

void BM_MortonEncode(benchmark::State& state) {
    Pcg32 rng(1);
    std::vector<std::uint32_t> coords(3 * 1024);
    for (auto& c : coords) {
        c = rng.next_u32() & ((1u << kMortonBitsPerAxis) - 1);
    }
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < coords.size(); i += 3) {
            acc ^= morton_encode(coords[i], coords[i + 1], coords[i + 2]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MortonEncode);

void BM_MortonDecode(benchmark::State& state) {
    Pcg32 rng(2);
    std::vector<std::uint64_t> codes(1024);
    for (auto& c : codes) {
        c = rng.next_u64() & ((std::uint64_t{1} << kMortonBits) - 1);
    }
    for (auto _ : state) {
        std::uint32_t x, y, z, acc = 0;
        for (std::uint64_t c : codes) {
            morton_decode(c, x, y, z);
            acc ^= x ^ y ^ z;
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MortonDecode);

void BM_KarrasBuild(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Pcg32 rng(3);
    std::set<std::uint64_t> keys;
    while (keys.size() < n) {
        keys.insert(rng.next_u64() & ((std::uint64_t{1} << 30) - 1));
    }
    const std::vector<std::uint64_t> codes(keys.begin(), keys.end());
    for (auto _ : state) {
        const RadixTree tree = build_radix_tree(codes, 30);
        benchmark::DoNotOptimize(tree.internal.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KarrasBuild)->Arg(1024)->Arg(16384);

void BM_BatBuild(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const ParticleSet base =
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), n, 7, 4);
    for (auto _ : state) {
        ParticleSet copy = base;
        const BatData bat = build_bat(std::move(copy), BatConfig{});
        benchmark::DoNotOptimize(bat.treelets.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(base.payload_bytes()));
}
BENCHMARK(BM_BatBuild)->Arg(50'000)->Arg(200'000)->Unit(benchmark::kMillisecond);

void BM_BatSerialize(benchmark::State& state) {
    const BatData bat = build_bat(
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 100'000, 7, 5), BatConfig{});
    for (auto _ : state) {
        const auto bytes = serialize_bat(bat);
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bat.particles.payload_bytes()));
}
BENCHMARK(BM_BatSerialize)->Unit(benchmark::kMillisecond);

void BM_BitmapForRange(benchmark::State& state) {
    for (auto _ : state) {
        std::uint32_t acc = 0;
        for (int i = 0; i < 1024; ++i) {
            acc ^= bitmap_for_range(i * 0.001, i * 0.001 + 0.05, 0.0, 1.0);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BitmapForRange);

void BM_SpatialQuery(benchmark::State& state) {
    const auto bytes = serialize_bat(build_bat(
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 200'000, 2, 6), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    BatQuery query;
    query.box = Box({0.25f, 0.25f, 0.25f}, {0.75f, 0.75f, 0.75f});
    for (auto _ : state) {
        std::uint64_t n = 0;
        query_bat(file, query, [&n](Vec3, std::span<const double>) { ++n; });
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_SpatialQuery)->Unit(benchmark::kMillisecond);

void BM_AttributeQuery(benchmark::State& state) {
    const auto bytes = serialize_bat(build_bat(
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 200'000, 2, 7), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    const auto [lo, hi] = file.attr_range(0);
    BatQuery query;
    query.attr_filters.push_back({0, lo + 0.48 * (hi - lo), lo + 0.52 * (hi - lo)});
    for (auto _ : state) {
        std::uint64_t n = 0;
        query_bat(file, query, [&n](Vec3, std::span<const double>) { ++n; });
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_AttributeQuery)->Unit(benchmark::kMillisecond);

void BM_ProgressiveCoarseRead(benchmark::State& state) {
    const auto bytes = serialize_bat(build_bat(
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 200'000, 2, 8), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    BatQuery query;
    query.quality_hi = 0.1f;
    for (auto _ : state) {
        std::uint64_t n = 0;
        query_bat(file, query, [&n](Vec3, std::span<const double>) { ++n; });
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_ProgressiveCoarseRead)->Unit(benchmark::kMillisecond);

void BM_ParticleSerialize(benchmark::State& state) {
    const ParticleSet set =
        make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 100'000, 14, 9);
    for (auto _ : state) {
        const auto bytes = set.to_bytes();
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(set.payload_bytes()));
}
BENCHMARK(BM_ParticleSerialize)->Unit(benchmark::kMillisecond);

// ---- perf-regression kernels (--json) -------------------------------------

/// Random Morton-range keys (the builder's sort input distribution).
std::vector<std::uint64_t> random_codes(std::size_t n, std::uint64_t seed) {
    Pcg32 rng(seed);
    std::vector<std::uint64_t> codes(n);
    for (auto& c : codes) {
        c = rng.next_u64() & ((std::uint64_t{1} << kMortonBits) - 1);
    }
    return codes;
}

/// The pre-radix builder sort: iota + std::sort with an indirect comparator.
std::vector<std::uint32_t> std_sort_order(std::span<const std::uint64_t> codes) {
    std::vector<std::uint32_t> order(codes.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return codes[a] != codes[b] ? codes[a] < codes[b] : a < b;
    });
    return order;
}

int run_json_kernels(int argc, char** argv) {
    using bench::JsonBenchResult;
    const char* out = bench::flag_value(argc, argv, "--out", "BENCH_micro.json");
    const long long threads_arg =
        std::atoll(bench::flag_value(argc, argv, "--threads", "-1"));
    const std::size_t nthreads = threads_arg < 0 ? ThreadPool::default_concurrency()
                                                 : static_cast<std::size_t>(threads_arg);
    ThreadPool pool(nthreads);
    const int pool_threads = static_cast<int>(nthreads) + 1;  // workers + caller
    bench::JsonBenchWriter writer;
    constexpr int kReps = 3;

    auto add = [&](const char* name, std::uint64_t n, double seconds,
                   std::uint64_t bytes, int threads) {
        writer.add(JsonBenchResult{name, n, 1e9 * seconds / static_cast<double>(n),
                                   "ns/op", static_cast<double>(bytes) / seconds,
                                   threads});
        std::fprintf(stderr, "[bench] %-28s n=%-9llu %8.2f ns/op\n", name,
                     static_cast<unsigned long long>(n),
                     1e9 * seconds / static_cast<double>(n));
    };

    // Sort: the seed's std::sort path vs the radix sort, serial and pooled.
    for (const std::size_t n : {std::size_t{1} << 20, std::size_t{1} << 22}) {
        const std::vector<std::uint64_t> codes = random_codes(n, 0x5eed + n);
        const std::uint64_t bytes = n * sizeof(std::uint64_t);
        std::vector<std::uint32_t> order;
        add("sort_std", n,
            bench::best_seconds(kReps, [&] { order = std_sort_order(codes); }), bytes, 1);
        std::vector<std::uint32_t> radix_order;
        add("sort_radix_serial", n,
            bench::best_seconds(kReps,
                                [&] { radix_order = radix_sort_order(codes, nullptr); }),
            bytes, 1);
        BAT_CHECK_MSG(radix_order == order, "radix order diverged from std::sort");
        add("sort_radix_pool", n,
            bench::best_seconds(kReps,
                                [&] { radix_order = radix_sort_order(codes, &pool); }),
            bytes, pool_threads);
        BAT_CHECK_MSG(radix_order == order, "pooled radix order diverged from std::sort");
    }

    // Encode + reorder + transfer on a 1M-particle set (4 attrs keeps setup fast).
    const std::size_t n = std::size_t{1} << 20;
    ParticleSet set = make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), n, 4, 11);
    const Box bounds = set.bounds();
    std::vector<std::uint64_t> codes(n);
    auto encode_range = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            codes[i] = morton_encode_position(set.position(i), bounds);
        }
    };
    add("encode_serial", n, bench::best_seconds(kReps, [&] { encode_range(0, n); }),
        n * 12, 1);
    add("encode_pool", n,
        bench::best_seconds(
            kReps, [&] { parallel_ranges(&pool, n, std::size_t{1} << 14, encode_range); }),
        n * 12, pool_threads);

    // SIMD kernel tiers vs forced-scalar on identical inputs. Rows are
    // emitted only when a vector tier is active: on a scalar-only host (or
    // under BAT_NO_SIMD) the comparison would gate nothing real, so the
    // bench_check simd family reports itself inapplicable instead.
    if (simd::active_level() != simd::Level::scalar) {
        std::vector<float> xs(n);
        std::vector<float> ys(n);
        std::vector<float> zs(n);
        set.deplane_positions(xs.data(), ys.data(), zs.data(), &pool);
        std::vector<std::uint64_t> batch(n);
        auto encode_batch = [&] {
            morton_encode_positions(xs.data(), ys.data(), zs.data(), n, bounds,
                                    batch.data());
        };
        simd::set_level_for_testing(simd::Level::scalar);
        add("morton_encode_scalar", n, bench::best_seconds(kReps, encode_batch),
            n * 12, 1);
        BAT_CHECK_MSG(batch == codes, "scalar batch encode diverged");
        simd::clear_level_for_testing();
        add("morton_encode_simd", n, bench::best_seconds(kReps, encode_batch),
            n * 12, 1);
        BAT_CHECK_MSG(batch == codes, "simd batch encode diverged");

        const std::span<const double> values = set.attr(0);
        const auto [vlo, vhi] = set.attr_range(0);
        const BinEdges edges = equal_width_edges(vlo, vhi);
        std::vector<std::uint8_t> bins(n);
        auto bin_batch = [&] {
            simd::bin_values_batch(values.data(), n, edges.data(), bins.data());
        };
        simd::set_level_for_testing(simd::Level::scalar);
        add("bitmap_bin_scalar", n, bench::best_seconds(kReps, bin_batch),
            n * sizeof(double), 1);
        const std::vector<std::uint8_t> scalar_bins = bins;
        simd::clear_level_for_testing();
        add("bitmap_bin_simd", n, bench::best_seconds(kReps, bin_batch),
            n * sizeof(double), 1);
        BAT_CHECK_MSG(bins == scalar_bins, "simd binning diverged from scalar");
    }

    const std::vector<std::uint32_t> order = radix_sort_order(codes, &pool);
    const std::uint64_t payload = set.payload_bytes();
    add("reorder_serial", n,
        bench::best_seconds(kReps, [&] { set.reorder(order, nullptr); }), payload, 1);
    add("reorder_pool", n, bench::best_seconds(kReps, [&] { set.reorder(order, &pool); }),
        payload, pool_threads);

    // Transfer merge: the seed's intermediate-ParticleSet path vs the
    // zero-copy deserialize_into path used by the aggregators.
    const std::vector<std::byte> wire = set.to_bytes();
    ParticleSet merged(set.attr_names());
    add("transfer_intermediate", n,
        bench::best_seconds(kReps,
                            [&] {
                                ParticleSet tmp = ParticleSet::from_bytes(wire);
                                merged = ParticleSet(set.attr_names());
                                merged.append(tmp);
                            }),
        payload, 1);
    add("transfer_zero_copy", n,
        bench::best_seconds(kReps,
                            [&] {
                                merged = ParticleSet(set.attr_names());
                                merged.resize(n);
                                merged.deserialize_into(wire, 0);
                            }),
        payload, 1);
    BAT_CHECK_MSG(merged.count() == n, "transfer kernel dropped particles");

    writer.write(out);
    return 0;
}

}  // namespace
}  // namespace bat

int main(int argc, char** argv) {
    if (bat::bench::has_flag(argc, argv, "--json")) {
        return bat::run_json_kernels(argc, argv);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
