// Reproduces paper Fig 9: adaptive vs AUG aggregation on the Coal Boiler
// time series at 1536 ranks, write (a) and read (b) bandwidth over
// timesteps 501..4501 at target sizes 8-64 MB, on the stampede2-like
// model (the paper runs these on Stampede2 SKX nodes). Also prints the
// paper's §VI-A2 file-statistics comparison at the 8 MB target for the
// final timestep (paper: AUG 296 files, mean 10.2 MB, std 13.9 MB, max
// 72.9 MB vs adaptive 327 files, mean 9.2 MB, std 8.4 MB, max 36.6 MB).
//
// Expected shape: adaptive outperforms AUG increasingly as particles are
// injected (paper: up to 2.5x writes, 3x reads); low target sizes degrade
// as the particle count grows, larger targets overtake them.

#include "bench_common.hpp"
#include "workloads/boiler.hpp"

using namespace bat;
using namespace bat::bench;

int main() {
    const int nranks = 1536;
    // Paper-scale particle counts; rank counts are estimated from a 2M
    // strided sample of the closed-form trajectory model.
    BoilerConfig boiler;
    boiler.particles_at_start = 4'600'000;
    boiler.particles_at_end = 41'500'000;
    const std::uint64_t bpp = 12 + 7 * 8;  // 3*f32 + 7*f64 (paper's schema)
    const simio::MachineConfig machine = simio::stampede2_like();
    const std::vector<std::uint64_t> targets = {8ull << 20, 16ull << 20, 32ull << 20,
                                                64ull << 20};

    std::vector<std::string> headers{"timestep", "particles_M"};
    for (std::uint64_t t : targets) {
        const std::string mb = std::to_string(t >> 20);
        headers.push_back("adp_" + mb + "MB");
        headers.push_back("aug_" + mb + "MB");
    }
    Table write_table(headers);
    Table read_table(headers);

    for (int timestep = 501; timestep <= 4501; timestep += 500) {
        const BoilerCounts counts =
            boiler_rank_counts(boiler, timestep, nranks, /*max_sample=*/2'000'000);
        const GridDecomp decomp = grid_decomp_3d(nranks, counts.data_bounds);
        const std::vector<RankInfo> ranks = make_rank_infos(decomp, counts.rank_counts);
        std::vector<std::string> wrow{
            std::to_string(timestep),
            fmt(static_cast<double>(boiler.particles_at(timestep)) / 1e6, 1)};
        std::vector<std::string> rrow = wrow;
        for (std::uint64_t target : targets) {
            for (AggStrategy strategy : {AggStrategy::adaptive, AggStrategy::aug}) {
                const auto params = two_phase_params(machine, strategy, target, bpp);
                wrow.push_back(fmt(simio::simulate_write(ranks, params).gb_per_s()));
                rrow.push_back(fmt(simio::simulate_read(ranks, params).gb_per_s()));
            }
        }
        write_table.add_row(std::move(wrow));
        read_table.add_row(std::move(rrow));
    }

    std::printf("\n=== Fig 9a: Coal Boiler write bandwidth (GB/s), 1536 ranks ===\n");
    write_table.print();
    std::printf("\n=== Fig 9b: Coal Boiler read bandwidth (GB/s), 1536 ranks ===\n");
    read_table.print();

    // File statistics at the 8 MB target, final timestep (paper §VI-A2).
    std::printf("\n=== File statistics, 8 MB target, timestep 4501 ===\n");
    const BoilerCounts counts =
        boiler_rank_counts(boiler, 4501, nranks, /*max_sample=*/2'000'000);
    const GridDecomp decomp = grid_decomp_3d(nranks, counts.data_bounds);
    const std::vector<RankInfo> ranks = make_rank_infos(decomp, counts.rank_counts);
    Table stats({"strategy", "files", "mean_MB", "std_MB", "max_MB"});
    for (AggStrategy strategy : {AggStrategy::adaptive, AggStrategy::aug}) {
        const simio::SimResult r = simio::simulate_write(
            ranks, two_phase_params(machine, strategy, 8 << 20, bpp));
        stats.add_row({to_string(strategy), std::to_string(r.files.num_files),
                       fmt(r.files.mean_bytes / (1 << 20), 1),
                       fmt(r.files.std_bytes / (1 << 20), 1),
                       fmt(r.files.max_bytes / (1 << 20), 1)});
    }
    stats.print();
    std::printf("(paper: AUG 296 files mean 10.2 std 13.9 max 72.9; "
                "adaptive 327 files mean 9.2 std 8.4 max 36.6)\n");
    return 0;
}
