// Reproduces paper Fig 11: adaptive vs AUG aggregation on the Dam Break
// time series — the 2M-particle run on 1536 ranks and the 8M-particle run
// on 6144 ranks — reporting write and read bandwidth over time for
// file-per-process and target sizes around the paper's 3 MB setting.
//
// Expected shape (paper): on the 2M run file-per-process writes are best
// for both strategies (and similar), while adaptive reads are slightly
// faster; on the 8M run the 3 MB adaptive configuration achieves the best
// write performance at a 1.5-2x speedup over AUG, with up to 3x for reads;
// the adaptive advantage grows with scale.

#include "bench_common.hpp"
#include "workloads/dambreak.hpp"

using namespace bat;
using namespace bat::bench;

namespace {

void run_case(const char* label, std::uint64_t particles, int nranks) {
    DamBreakConfig dam;
    dam.num_particles = particles;
    const std::uint64_t bpp = 12 + 4 * 8;  // 3*f32 + 4*f64 (paper's schema)
    const simio::MachineConfig machine = simio::stampede2_like();
    const std::vector<std::uint64_t> targets = {3ull << 20, 6ull << 20, 12ull << 20};

    std::vector<std::string> headers{"timestep"};
    headers.push_back("adp_fpp");
    headers.push_back("aug_fpp");
    for (std::uint64_t t : targets) {
        const std::string mb = std::to_string(t >> 20);
        headers.push_back("adp_" + mb + "MB");
        headers.push_back("aug_" + mb + "MB");
    }
    Table write_table(headers);
    Table read_table(headers);

    for (int timestep = 0; timestep <= 4001; timestep += 500) {
        const std::vector<std::uint64_t> counts =
            dambreak_rank_counts(dam, timestep, nranks, /*max_sample=*/2'000'000);
        const GridDecomp decomp = grid_decomp_2d(nranks, dam.domain);
        const std::vector<RankInfo> ranks = make_rank_infos(decomp, counts);
        std::vector<std::string> wrow{std::to_string(timestep)};
        std::vector<std::string> rrow{std::to_string(timestep)};
        // File-per-process through our pipeline (both strategies write one
        // file per particle-owning rank, so they coincide algorithmically;
        // print both for the figure's paired series).
        for (int copy = 0; copy < 2; ++copy) {
            const auto params =
                two_phase_params(machine, AggStrategy::file_per_process, 1, bpp);
            wrow.push_back(fmt(simio::simulate_write(ranks, params).gb_per_s()));
            rrow.push_back(fmt(simio::simulate_read(ranks, params).gb_per_s()));
        }
        for (std::uint64_t target : targets) {
            for (AggStrategy strategy : {AggStrategy::adaptive, AggStrategy::aug}) {
                const auto params = two_phase_params(machine, strategy, target, bpp);
                wrow.push_back(fmt(simio::simulate_write(ranks, params).gb_per_s()));
                rrow.push_back(fmt(simio::simulate_read(ranks, params).gb_per_s()));
            }
        }
        write_table.add_row(std::move(wrow));
        read_table.add_row(std::move(rrow));
    }
    std::printf("\n=== Fig 11 (%s): write bandwidth (GB/s) ===\n", label);
    write_table.print();
    std::printf("\n=== Fig 11 (%s): read bandwidth (GB/s) ===\n", label);
    read_table.print();
}

}  // namespace

int main() {
    run_case("2M Dam Break, 1536 ranks", 2'000'000, 1536);
    run_case("8M Dam Break, 6144 ranks", 8'000'000, 6144);
    return 0;
}
