// Reproduces paper Table II: progressive single-thread read times and
// throughput on the Dam Break time series — the 2M-particle run written
// using 1536 ranks and the 8M run written using 6144 ranks — at target
// sizes around the paper's settings.
//
// Real BAT files are built and read; counts are scaled by BAT_BENCH_SCALE
// (default 0.25). Expected shape: per-target read times are similar (the
// dominant factor is the number of points returned); the smaller run has
// somewhat higher pts/ms throughput thanks to OS caching (paper §VI-B1).

#include <chrono>

#include "bench_common.hpp"
#include "core/bat_query.hpp"
#include "io/writer.hpp"
#include "test_output_free.hpp"
#include "workloads/dambreak.hpp"
#include "workloads/decomposition.hpp"

using namespace bat;
using namespace bat::bench;

namespace {

void run_case(const char* label, std::uint64_t particles, int nranks,
              const std::vector<std::uint64_t>& targets,
              const std::filesystem::path& dir) {
    DamBreakConfig dam;
    dam.num_particles = particles;
    const std::vector<int> timesteps{501, 3001};

    std::printf("\n=== Table II (%s): progressive single-thread reads ===\n", label);
    Table table({"target", "avg_read_ms", "avg_throughput_pts_per_ms"});
    for (const std::uint64_t target : targets) {
        double total_ms = 0;
        std::uint64_t total_points = 0;
        int reads = 0;
        for (const int timestep : timesteps) {
            const ParticleSet global = make_dambreak_particles(dam, timestep);
            const GridDecomp decomp = grid_decomp_2d(nranks, dam.domain);
            const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);
            std::vector<Box> bounds;
            for (int r = 0; r < nranks; ++r) {
                bounds.push_back(decomp.rank_box(r));
            }
            WriterConfig config;
            config.tree.target_file_size = target;
            config.directory = dir;
            config.basename = std::string("t2_") + label[0] +
                              std::to_string(target >> 20) + "_" +
                              std::to_string(timestep);
            const WriteResult written = write_particles_serial(per_rank, bounds, config);

            const Metadata meta = Metadata::load(written.metadata_path);
            std::vector<BatFile> files;
            files.reserve(meta.leaves.size());
            for (const MetaLeaf& leaf : meta.leaves) {
                files.emplace_back(dir / leaf.file);
            }
            for (int step = 0; step < 10; ++step) {
                BatQuery query;
                query.quality_lo = static_cast<float>(step) / 10.f;
                query.quality_hi = static_cast<float>(step + 1) / 10.f;
                std::uint64_t points = 0;
                const auto t0 = std::chrono::steady_clock::now();
                for (const BatFile& file : files) {
                    points +=
                        query_bat(file, query, [](Vec3, std::span<const double>) {});
                }
                total_ms += std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
                total_points += points;
                ++reads;
            }
        }
        table.add_row({std::to_string(target >> 20) + "MB", fmt(total_ms / reads, 1),
                       fmt(static_cast<double>(total_points) / total_ms, 0)});
    }
    table.print();
}

}  // namespace

int main() {
    const double scale = bench_scale() * 0.4;  // see table1 note
    const std::filesystem::path dir = scratch_dir("table2");
    std::printf("=== Table II: Dam Break progressive reads (scale %.2f) ===\n", scale);
    run_case("2M run, 1536 writer ranks", static_cast<std::uint64_t>(2'000'000 * scale),
             1536, {1ull << 20, 2ull << 20, 4ull << 20}, dir);
    run_case("8M run, 6144 writer ranks", static_cast<std::uint64_t>(8'000'000 * scale),
             6144, {3ull << 20, 6ull << 20, 12ull << 20}, dir);
    std::printf("\n(paper, full scale: 2M run ~70-73k pts/ms; 8M run ~57-59k pts/ms)\n");
    return 0;
}
