// Reproduces paper Fig 12: component breakdowns of adaptive vs AUG I/O on
// the 8M-particle Dam Break at the 3 MB target size, 6144 ranks.
//
// Expected shape (paper): the Dam Break has a fixed particle count, so an
// ideal strategy achieves constant write times over the series. Adaptive
// aggregation stays nearly constant; AUG's times track the evolving
// particle distribution (collapse, reflection, slosh).

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "workloads/dambreak.hpp"

using namespace bat;
using namespace bat::bench;

int main() {
    const int nranks = 6144;
    DamBreakConfig dam;
    dam.num_particles = 8'000'000;
    const std::uint64_t bpp = 12 + 4 * 8;
    const simio::MachineConfig machine = simio::stampede2_like();

    std::printf("\n=== Fig 12: 8M Dam Break component times (ms), 3 MB target, 6144 ranks "
                "===\n");
    Table table({"timestep", "strategy", "transfer", "bat_build", "file_write", "other",
                 "total"});
    std::vector<double> adaptive_totals;
    std::vector<double> aug_totals;
    for (int timestep = 0; timestep <= 4001; timestep += 500) {
        const std::vector<std::uint64_t> counts =
            dambreak_rank_counts(dam, timestep, nranks, /*max_sample=*/2'000'000);
        const GridDecomp decomp = grid_decomp_2d(nranks, dam.domain);
        const std::vector<RankInfo> ranks = make_rank_infos(decomp, counts);
        for (AggStrategy strategy : {AggStrategy::adaptive, AggStrategy::aug}) {
            const simio::SimResult r = simio::simulate_write(
                ranks, two_phase_params(machine, strategy, 3 << 20, bpp));
            const double transfer = r.phase_seconds("transfer");
            const double build = r.phase_seconds("bat_build");
            const double write = r.phase_seconds("file_write");
            table.add_row({std::to_string(timestep), to_string(strategy),
                           fmt(1e3 * transfer, 1), fmt(1e3 * build, 1),
                           fmt(1e3 * write, 1),
                           fmt(1e3 * (r.seconds - transfer - build - write), 1),
                           fmt(1e3 * r.seconds, 1)});
            (strategy == AggStrategy::adaptive ? adaptive_totals : aug_totals)
                .push_back(r.seconds);
        }
    }
    table.print();

    // Constancy metric: coefficient of variation of the total write time.
    const double cv_adaptive = stddev(adaptive_totals) / mean(adaptive_totals);
    const double cv_aug = stddev(aug_totals) / mean(aug_totals);
    std::printf("\nwrite-time variability over the series (std/mean): adaptive %.3f, "
                "aug %.3f\n(paper: adaptive maintains nearly constant I/O times; AUG is "
                "influenced by the distribution)\n",
                cv_adaptive, cv_aug);
    return 0;
}
