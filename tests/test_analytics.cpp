// Tests for the analytics module: histograms, density grids, selection
// statistics, and time-series curves over written BAT data.

#include <gtest/gtest.h>

#include <numeric>

#include "analytics/analytics.hpp"
#include "test_helpers.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/mixtures.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});

std::filesystem::path write_dataset(const testing::TempDir& dir, const ParticleSet& global,
                                    const std::string& name) {
    const GridDecomp decomp = grid_decomp_3d(8, kDomain);
    const auto per_rank = partition_particles(global, decomp);
    std::vector<Box> bounds;
    for (int r = 0; r < 8; ++r) {
        bounds.push_back(decomp.rank_box(r));
    }
    WriterConfig config;
    config.tree.target_file_size = 32 << 10;
    config.directory = dir.path();
    config.basename = name;
    return write_particles_serial(per_rank, bounds, config).metadata_path;
}

TEST(HistogramTest, TotalMatchesSelection) {
    testing::TempDir dir;
    const ParticleSet global = make_uniform_particles(kDomain, 10'000, 2, 3);
    Dataset ds(write_dataset(dir, global, "hist"));
    const Histogram hist = attribute_histogram(ds, 0, 32);
    EXPECT_EQ(hist.total(), 10'000u);
    EXPECT_EQ(hist.bins.size(), 32u);
}

TEST(HistogramTest, MatchesBruteForceBinning) {
    testing::TempDir dir;
    const ParticleSet global = make_uniform_particles(kDomain, 8'000, 1, 5);
    Dataset ds(write_dataset(dir, global, "hist2"));
    const std::size_t nbins = 16;
    const Histogram hist = attribute_histogram(ds, 0, nbins);
    // Brute-force reference.
    std::vector<std::uint64_t> expected(nbins, 0);
    const auto [lo, hi] = global.attr_range(0);
    const double width = (hi - lo) / static_cast<double>(nbins);
    for (std::size_t i = 0; i < global.count(); ++i) {
        const double v = global.attr(0)[i];
        ++expected[std::min(static_cast<std::size_t>((v - lo) / width), nbins - 1)];
    }
    EXPECT_EQ(hist.bins, expected);
}

TEST(HistogramTest, CustomRangeClipsValues) {
    testing::TempDir dir;
    const ParticleSet global = make_uniform_particles(kDomain, 5'000, 1, 7);
    Dataset ds(write_dataset(dir, global, "hist3"));
    const auto [lo, hi] = ds.attr_range(0);
    const double mid = 0.5 * (lo + hi);
    const Histogram hist =
        attribute_histogram(ds, 0, 8, BatQuery{}, std::make_pair(lo, mid));
    EXPECT_LT(hist.total(), 5'000u);
    EXPECT_GT(hist.total(), 0u);
    EXPECT_DOUBLE_EQ(hist.hi, mid);
}

TEST(HistogramTest, BinCenterAndMode) {
    Histogram h;
    h.lo = 0;
    h.hi = 10;
    h.bins = {1, 5, 2};
    EXPECT_EQ(h.mode(), 1u);
    EXPECT_NEAR(h.bin_center(0), 10.0 / 6.0, 1e-12);
}

TEST(DensityGridTest, ConservesCountAndFindsClusters) {
    testing::TempDir dir;
    const std::vector<GaussianBlob> blobs{{{0.4f, 0.4f, 0.4f}, 0.05f, 1.0}};
    const ParticleSet global = make_mixture_particles(kDomain, blobs, 6'000, 1, 9);
    Dataset ds(write_dataset(dir, global, "grid"));
    BatQuery whole;
    whole.box = kDomain;  // grid over the full domain, not the tight data bounds
    const DensityGrid grid = density_grid(ds, 8, 8, 8, whole);
    EXPECT_EQ(std::accumulate(grid.counts.begin(), grid.counts.end(), 0ull), 6'000ull);
    EXPECT_GT(grid.imbalance(), 1.5);
    // The fullest cell must be near the blob center.
    std::uint64_t best = 0;
    int bx = 0, by = 0, bz = 0;
    for (int z = 0; z < 8; ++z) {
        for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 8; ++x) {
                if (grid.at(x, y, z) > best) {
                    best = grid.at(x, y, z);
                    bx = x;
                    by = y;
                    bz = z;
                }
            }
        }
    }
    EXPECT_NEAR(bx, 1, 1);  // 0.4 of [0,2] -> cell ~1.6 of 8
    EXPECT_NEAR(by, 1, 1);
    EXPECT_NEAR(bz, 1, 1);
}

TEST(DensityGridTest, UniformDataIsBalanced) {
    testing::TempDir dir;
    const ParticleSet global = make_uniform_particles(kDomain, 40'000, 1, 11);
    Dataset ds(write_dataset(dir, global, "grid2"));
    const DensityGrid grid = density_grid(ds, 4, 4, 4);
    EXPECT_LT(grid.imbalance(), 1.5);
}

TEST(SelectionStatsTest, MatchesDirectComputation) {
    testing::TempDir dir;
    const ParticleSet global = make_uniform_particles(kDomain, 7'000, 2, 13);
    Dataset ds(write_dataset(dir, global, "stats"));
    const SelectionStats stats = selection_stats(ds, 1);
    EXPECT_EQ(stats.count, 7'000u);
    const auto [lo, hi] = global.attr_range(1);
    EXPECT_DOUBLE_EQ(stats.min, lo);
    EXPECT_DOUBLE_EQ(stats.max, hi);
    double mean = 0;
    for (std::size_t i = 0; i < global.count(); ++i) {
        mean += global.attr(1)[i];
    }
    mean /= static_cast<double>(global.count());
    EXPECT_NEAR(stats.mean, mean, 1e-9);
}

TEST(SelectionStatsTest, SpatialSubset) {
    testing::TempDir dir;
    const ParticleSet global = make_uniform_particles(kDomain, 7'000, 1, 17);
    Dataset ds(write_dataset(dir, global, "stats2"));
    BatQuery query;
    query.box = Box({0, 0, 0}, {1, 1, 1});
    const SelectionStats stats = selection_stats(ds, 0, query);
    EXPECT_EQ(stats.count, testing::brute_force_query(global, *query.box).size());
    EXPECT_LT(stats.count, 7'000u);
}

TEST(SeriesCurveTest, TracksGrowth) {
    testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(4, kDomain);
    std::filesystem::path manifest;
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        WriterConfig base;
        base.directory = dir.path();
        base.basename = "curve";
        SeriesWriter writer(base);
        for (int t = 0; t < 3; ++t) {
            const ParticleSet global = make_uniform_particles(
                kDomain, 1'000 * static_cast<std::size_t>(t + 1), 1,
                static_cast<std::uint64_t>(t) + 31);
            const auto per_rank = partition_particles(global, decomp);
            writer.write_timestep(comm, t,
                                  per_rank[static_cast<std::size_t>(comm.rank())],
                                  decomp.rank_box(comm.rank()));
        }
        const auto path = writer.finalize(comm);
        if (comm.rank() == 0) {
            manifest = path;
        }
    });
    const SeriesReader reader(manifest);
    const auto curve = series_curve(reader, 0);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_EQ(curve[0].count, 1'000u);
    EXPECT_EQ(curve[1].count, 2'000u);
    EXPECT_EQ(curve[2].count, 3'000u);
}

}  // namespace
}  // namespace bat
