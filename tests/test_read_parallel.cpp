// Tests for the parallel, batched read path: threaded leaf serving vs the
// serial path (byte-identical), request coalescing (O(aggregators)
// messages), protocol-validator cleanliness under concurrent serving, and
// the shared LRU leaf-file cache. The sanitizer matrix runs this file under
// TSan, covering the comm-thread/worker handoff in LeafServer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>

#include "io/data_service.hpp"
#include "io/leaf_cache.hpp"
#include "io/reader.hpp"
#include "io/writer.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});

struct Written {
    testing::TempDir dir;
    ParticleSet global;
    std::filesystem::path meta_path;

    /// Written at 27 virtual ranks with a small target size => 27 leaf
    /// files, so readers at <=8 ranks serve several leaves per aggregator
    /// and coalescing has something to batch.
    explicit Written(std::size_t n = 24'000, std::uint64_t target = 16 << 10) {
        global = make_uniform_particles(kDomain, n, 2, 17);
        const int write_ranks = 27;
        const GridDecomp decomp = grid_decomp_3d(write_ranks, kDomain);
        const auto per_rank = partition_particles(global, decomp);
        std::vector<Box> bounds;
        for (int r = 0; r < write_ranks; ++r) {
            bounds.push_back(decomp.rank_box(r));
        }
        WriterConfig config;
        config.tree.target_file_size = target;
        config.directory = dir.path();
        config.basename = "par";
        meta_path = write_particles_serial(per_rank, bounds, config).metadata_path;
    }
};

/// Per-rank serialized read results under the given config.
std::vector<std::vector<std::byte>> read_all(const Written& w, int read_ranks,
                                             ReaderConfig rc) {
    const GridDecomp decomp = grid_decomp_3d(read_ranks, kDomain);
    std::vector<std::vector<std::byte>> bytes(static_cast<std::size_t>(read_ranks));
    std::mutex mutex;
    vmpi::Runtime::run(read_ranks, [&](vmpi::Comm& comm) {
        const ReadResult result =
            read_particles(comm, w.meta_path, decomp.rank_read_box(comm.rank()), rc);
        std::lock_guard<std::mutex> lock(mutex);
        bytes[static_cast<std::size_t>(comm.rank())] = result.particles.to_bytes();
    });
    return bytes;
}

std::uint64_t total_count(const std::vector<std::vector<std::byte>>& per_rank) {
    std::uint64_t total = 0;
    for (const auto& bytes : per_rank) {
        total += ParticleSet::from_bytes(bytes).count();
    }
    return total;
}

TEST(ReadParallelTest, ThreadedServingByteIdenticalToSerial) {
    const Written w;
    ReaderConfig serial;
    const auto want = read_all(w, 5, serial);
    EXPECT_EQ(total_count(want), w.global.count());

    for (const std::size_t workers : {1u, 3u}) {
        ThreadPool pool(workers);
        ReaderConfig threaded;
        threaded.pool = &pool;
        EXPECT_EQ(read_all(w, 5, threaded), want) << "workers=" << workers;
    }
}

TEST(ReadParallelTest, PerLeafModeAgreesAndCoalescingCutsMessages) {
    const Written w;
    auto& metrics = obs::MetricsRegistry::global();
    ThreadPool pool(2);
    const int read_ranks = 8;

    ReaderConfig per_leaf;
    per_leaf.pool = &pool;
    per_leaf.coalesce = false;
    const std::uint64_t before_per_leaf = metrics.counter("read.request_msgs").value();
    const auto per_leaf_bytes = read_all(w, read_ranks, per_leaf);
    const std::uint64_t per_leaf_msgs =
        metrics.counter("read.request_msgs").value() - before_per_leaf;

    ReaderConfig coalesced;
    coalesced.pool = &pool;
    const std::uint64_t before_coalesced = metrics.counter("read.request_msgs").value();
    const auto coalesced_bytes = read_all(w, read_ranks, coalesced);
    const std::uint64_t coalesced_msgs =
        metrics.counter("read.request_msgs").value() - before_coalesced;

    EXPECT_EQ(coalesced_bytes, per_leaf_bytes);
    // Coalesced traffic is bounded by the aggregator count per client;
    // per-leaf traffic scales with overlapped leaves (many, given the tiny
    // target file size).
    EXPECT_LE(coalesced_msgs,
              static_cast<std::uint64_t>(read_ranks) * (read_ranks - 1));
    EXPECT_LT(coalesced_msgs, per_leaf_msgs);
}

TEST(ReadParallelTest, EveryRankServesAndRequestsValidatorClean) {
    const Written w;
    ThreadPool pool(3);
    const int nranks = 6;
    const GridDecomp decomp = grid_decomp_3d(nranks, kDomain);
    std::atomic<std::uint64_t> total{0};
    const vmpi::ValidationReport report =
        vmpi::Runtime::run_validated(nranks, [&](vmpi::Comm& comm) {
            ReaderConfig rc;
            rc.pool = &pool;
            const ReadResult result = read_particles(
                comm, w.meta_path, decomp.rank_read_box(comm.rank()), rc);
            total.fetch_add(result.particles.count());
        });
    EXPECT_FALSE(report.deadlock);
    EXPECT_TRUE(report.rank_errors.empty());
    EXPECT_TRUE(report.diagnostics.empty());
    EXPECT_GT(report.sends, 0u);
    EXPECT_EQ(total.load(), w.global.count());
}

TEST(ReadParallelTest, DataServiceThreadedMatchesSerial) {
    const Written w;
    const int nranks = 4;
    const auto run_rounds = [&](ThreadPool* pool) {
        std::vector<std::vector<std::byte>> bytes(static_cast<std::size_t>(nranks));
        std::mutex mutex;
        vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
            DataService service(comm, w.meta_path, pool);
            // Round 1: each rank takes a quarter slab in x.
            BatQuery q1;
            const float x0 = 0.5f * static_cast<float>(comm.rank());
            q1.box = Box({x0, 0, 0}, {x0 + 0.5f, 2, 2});
            q1.inclusive_upper = comm.rank() == nranks - 1;
            ParticleSet mine = service.query_round(q1);
            // Round 2: rank 1 asks for a filtered whole-domain view.
            if (comm.rank() == 1) {
                BatQuery q2;
                const auto [lo, hi] = w.global.attr_range(1);
                q2.attr_filters.push_back({1, lo + 0.5 * (hi - lo), hi});
                mine.append(service.query_round(q2));
            } else {
                service.query_round(std::nullopt);
            }
            std::lock_guard<std::mutex> lock(mutex);
            bytes[static_cast<std::size_t>(comm.rank())] = mine.to_bytes();
        });
        return bytes;
    };
    const auto serial = run_rounds(nullptr);
    ThreadPool pool(2);
    EXPECT_EQ(run_rounds(&pool), serial);

    std::uint64_t round1_total = 0;
    for (const auto& b : serial) {
        round1_total += ParticleSet::from_bytes(b).count();
    }
    EXPECT_GE(round1_total, w.global.count());  // round 1 partitions; round 2 adds
}

TEST(ReadParallelTest, LeafCacheHitsAcrossCollectiveReads) {
    const Written w;
    auto& metrics = obs::MetricsRegistry::global();
    LeafFileCache cache;
    ReaderConfig rc;
    rc.cache = &cache;

    const std::uint64_t miss0 = metrics.counter("read.leaf_cache_miss").value();
    read_all(w, 4, rc);
    const std::uint64_t first_misses =
        metrics.counter("read.leaf_cache_miss").value() - miss0;
    EXPECT_GT(first_misses, 0u);
    EXPECT_GT(cache.size(), 0u);

    // A second collective read of the same dataset through the same cache
    // must reopen nothing.
    const std::uint64_t miss1 = metrics.counter("read.leaf_cache_miss").value();
    const std::uint64_t hit1 = metrics.counter("read.leaf_cache_hit").value();
    read_all(w, 4, rc);
    EXPECT_EQ(metrics.counter("read.leaf_cache_miss").value(), miss1);
    EXPECT_GT(metrics.counter("read.leaf_cache_hit").value(), hit1);
}

TEST(ReadParallelTest, LeafCacheEvictsLeastRecentlyUsed) {
    const Written w;
    const Metadata meta = Metadata::load(w.meta_path);
    ASSERT_GE(meta.leaves.size(), 3u);
    LeafFileCache cache(2);
    const auto path = [&](std::size_t i) { return w.dir.path() / meta.leaves[i].file; };

    const auto a = cache.open(path(0));
    cache.open(path(1));
    EXPECT_EQ(cache.size(), 2u);
    cache.open(path(2));  // evicts leaf 0 (least recently used)
    EXPECT_EQ(cache.size(), 2u);

    // The evicted mapping stays alive through the returned shared_ptr...
    EXPECT_GT(a->header().file_size, 0u);
    // ...and reopening it works (as a fresh miss) and evicts leaf 1.
    auto& metrics = obs::MetricsRegistry::global();
    const std::uint64_t miss0 = metrics.counter("read.leaf_cache_miss").value();
    cache.open(path(0));
    EXPECT_EQ(metrics.counter("read.leaf_cache_miss").value(), miss0 + 1);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ReadParallelTest, ReadReportsMergePhaseAndBytesRead) {
    const Written w;
    LeafFileCache cache;  // fresh cache so this read actually opens files
    const GridDecomp decomp = grid_decomp_3d(4, kDomain);
    std::atomic<std::uint64_t> bytes_read{0};
    std::atomic<std::uint64_t> served{0};
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        ReaderConfig rc;
        rc.cache = &cache;
        const ReadResult result =
            read_particles(comm, w.meta_path, decomp.rank_read_box(comm.rank()), rc);
        bytes_read.fetch_add(result.bytes_read);
        served.fetch_add(result.particles.count());
        EXPECT_GE(result.timings.total(),
                  result.timings.serve + result.timings.merge);
    });
    EXPECT_EQ(served.load(), w.global.count());
    // Every leaf file was opened exactly once somewhere, so the summed
    // bytes_read equals the summed file sizes.
    const Metadata meta = Metadata::load(w.meta_path);
    std::uint64_t file_bytes = 0;
    for (const MetaLeaf& leaf : meta.leaves) {
        file_bytes += std::filesystem::file_size(w.dir.path() / leaf.file);
    }
    EXPECT_EQ(bytes_read.load(), file_bytes);
}

}  // namespace
}  // namespace bat
