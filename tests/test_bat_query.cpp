// Tests for visualization queries (paper §V): spatial and attribute
// filtering vs brute force, false-positive elimination, progressive
// multiresolution consistency, and the quality remap.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/bat_query.hpp"
#include "test_helpers.hpp"
#include "workloads/mixtures.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kUnit({0, 0, 0}, {1, 1, 1});

struct Fixture {
    ParticleSet original;
    std::vector<std::byte> bytes;

    explicit Fixture(std::size_t n = 30'000, std::size_t nattrs = 3,
                     std::uint64_t seed = 42, bool clustered = false) {
        if (clustered) {
            const auto blobs = make_random_blobs(kUnit, 5, seed);
            original = make_mixture_particles(kUnit, blobs, n, nattrs, seed);
        } else {
            original = make_uniform_particles(kUnit, n, nattrs, seed);
        }
        ParticleSet copy = original;
        bytes = serialize_bat(build_bat(std::move(copy), BatConfig{}));
    }

    BatFile file() const { return BatFile{std::span<const std::byte>(bytes)}; }
};

std::vector<testing::ParticleKey> collect(const BatFile& file, const BatQuery& query,
                                          QueryStats* stats = nullptr) {
    std::vector<testing::ParticleKey> keys;
    query_bat(file, query, [&keys](Vec3 p, std::span<const double> attrs) {
        keys.push_back({p.x, p.y, p.z, {attrs.begin(), attrs.end()}});
    }, stats);
    std::sort(keys.begin(), keys.end());
    return keys;
}

std::vector<testing::ParticleKey> reference(const ParticleSet& set, const Box& box,
                                            bool inclusive, int attr = -1, double lo = 0,
                                            double hi = 0) {
    std::vector<testing::ParticleKey> keys;
    for (std::size_t i : testing::brute_force_query(set, box, inclusive, attr, lo, hi)) {
        testing::ParticleKey k;
        const Vec3 p = set.position(i);
        k.x = p.x;
        k.y = p.y;
        k.z = p.z;
        for (std::size_t a = 0; a < set.num_attrs(); ++a) {
            k.attrs.push_back(set.attr(a)[i]);
        }
        keys.push_back(std::move(k));
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

TEST(QualityRemapTest, EndpointsExact) {
    EXPECT_DOUBLE_EQ(remap_quality(0.0, 5), 0.0);
    EXPECT_DOUBLE_EQ(remap_quality(1.0, 5), 5.0);
    EXPECT_DOUBLE_EQ(remap_quality(-0.5, 5), 0.0);
    EXPECT_DOUBLE_EQ(remap_quality(2.0, 5), 5.0);
}

TEST(QualityRemapTest, MonotoneIncreasing) {
    double prev = 0.0;
    for (int i = 1; i <= 100; ++i) {
        const double t = remap_quality(i / 100.0, 8);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(QualityRemapTest, LogScaleFrontLoadsDepth) {
    // Because point counts double per level, half quality should map to
    // nearly the full depth (log remap), not half the depth.
    EXPECT_GT(remap_quality(0.5, 10), 8.0);
}

TEST(PointsAtDepthTest, WindowIsMonotoneAndExact) {
    const std::uint32_t own = 100;
    for (int depth = 0; depth < 4; ++depth) {
        std::uint32_t prev = 0;
        for (double t = 0.0; t <= 5.01; t += 0.05) {
            const std::uint32_t n = points_at_depth(t, depth, own);
            EXPECT_GE(n, prev);
            prev = n;
        }
        EXPECT_EQ(points_at_depth(static_cast<double>(depth), depth, own), 0u);
        EXPECT_EQ(points_at_depth(depth + 1.0, depth, own), own);
    }
}

TEST(BatQueryTest, FullQueryReturnsEverything) {
    const Fixture fx;
    const BatFile file = fx.file();
    BatQuery query;  // no filters, quality 0 -> 1
    const auto got = collect(file, query);
    EXPECT_EQ(got, testing::particle_keys(fx.original));
}

TEST(BatQueryTest, SpatialQueryMatchesBruteForce) {
    const Fixture fx;
    const BatFile file = fx.file();
    const Box queries[] = {
        Box({0.2f, 0.2f, 0.2f}, {0.5f, 0.6f, 0.4f}),
        Box({0.0f, 0.0f, 0.0f}, {0.1f, 1.0f, 1.0f}),
        Box({0.9f, 0.9f, 0.9f}, {1.0f, 1.0f, 1.0f}),
        Box({0.45f, 0.45f, 0.45f}, {0.55f, 0.55f, 0.55f}),
    };
    for (const Box& box : queries) {
        BatQuery query;
        query.box = box;
        EXPECT_EQ(collect(file, query), reference(fx.original, box, true));
    }
}

TEST(BatQueryTest, HalfOpenContainment) {
    const Fixture fx(20'000, 2, 7);
    const BatFile file = fx.file();
    const Box box({0.25f, 0.25f, 0.25f}, {0.75f, 0.75f, 0.75f});
    BatQuery query;
    query.box = box;
    query.inclusive_upper = false;
    EXPECT_EQ(collect(file, query), reference(fx.original, box, false));
}

TEST(BatQueryTest, DisjointBoxReturnsNothing) {
    const Fixture fx(5'000, 1, 9);
    const BatFile file = fx.file();
    BatQuery query;
    query.box = Box({2, 2, 2}, {3, 3, 3});
    QueryStats stats;
    EXPECT_EQ(collect(file, query, &stats).size(), 0u);
    EXPECT_EQ(stats.points_tested, 0u);
}

TEST(BatQueryTest, AttributeFilterMatchesBruteForce) {
    const Fixture fx;
    const BatFile file = fx.file();
    for (std::size_t a = 0; a < 3; ++a) {
        const auto [lo, hi] = fx.original.attr_range(a);
        const double qlo = lo + 0.3 * (hi - lo);
        const double qhi = lo + 0.4 * (hi - lo);
        BatQuery query;
        query.attr_filters.push_back({static_cast<std::uint32_t>(a), qlo, qhi});
        EXPECT_EQ(collect(file, query),
                  reference(fx.original, Box({-10, -10, -10}, {10, 10, 10}), true,
                            static_cast<int>(a), qlo, qhi));
    }
}

TEST(BatQueryTest, CombinedSpatialAndAttributeFilter) {
    const Fixture fx(40'000, 3, 13, /*clustered=*/true);
    const BatFile file = fx.file();
    const Box box({0.1f, 0.1f, 0.1f}, {0.7f, 0.7f, 0.7f});
    const auto [lo, hi] = fx.original.attr_range(1);
    const double qlo = lo + 0.2 * (hi - lo);
    const double qhi = lo + 0.6 * (hi - lo);
    BatQuery query;
    query.box = box;
    query.attr_filters.push_back({1, qlo, qhi});
    EXPECT_EQ(collect(file, query), reference(fx.original, box, true, 1, qlo, qhi));
}

TEST(BatQueryTest, ConjunctionOfTwoAttributeFilters) {
    const Fixture fx;
    const BatFile file = fx.file();
    const auto [lo0, hi0] = fx.original.attr_range(0);
    const auto [lo1, hi1] = fx.original.attr_range(1);
    BatQuery query;
    query.attr_filters.push_back({0, lo0, lo0 + 0.5 * (hi0 - lo0)});
    query.attr_filters.push_back({1, lo1 + 0.5 * (hi1 - lo1), hi1});
    std::uint64_t count = 0;
    query_bat(file, query, [&](Vec3, std::span<const double> attrs) {
        EXPECT_LE(attrs[0], lo0 + 0.5 * (hi0 - lo0));
        EXPECT_GE(attrs[1], lo1 + 0.5 * (hi1 - lo1));
        ++count;
    });
    // Cross-check the count.
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < fx.original.count(); ++i) {
        if (fx.original.attr(0)[i] <= lo0 + 0.5 * (hi0 - lo0) &&
            fx.original.attr(1)[i] >= lo1 + 0.5 * (hi1 - lo1)) {
            ++expected;
        }
    }
    EXPECT_EQ(count, expected);
}

TEST(BatQueryTest, OutOfRangeFilterReturnsNothingFast) {
    const Fixture fx(5'000, 2, 15);
    const BatFile file = fx.file();
    const auto [lo, hi] = fx.original.attr_range(0);
    BatQuery query;
    query.attr_filters.push_back({0, hi + 1.0, hi + 2.0});
    QueryStats stats;
    EXPECT_EQ(query_bat(file, query, [](Vec3, std::span<const double>) {}, &stats), 0u);
    EXPECT_EQ(stats.points_tested, 0u);
}

TEST(BatQueryTest, BitmapPruningActuallyPrunes) {
    // A narrow filter on spatially correlated data must prune subtrees.
    const Fixture fx(50'000, 2, 17);
    const BatFile file = fx.file();
    const auto [lo, hi] = fx.original.attr_range(0);
    BatQuery query;
    query.attr_filters.push_back({0, lo, lo + 0.02 * (hi - lo)});
    QueryStats stats;
    query_bat(file, query, [](Vec3, std::span<const double>) {}, &stats);
    EXPECT_GT(stats.pruned_by_bitmap, 0u);
    EXPECT_LT(stats.points_tested, fx.original.count());
}

TEST(BatQueryTest, StatsCountEmittedPoints) {
    const Fixture fx(10'000, 1, 19);
    const BatFile file = fx.file();
    BatQuery query;
    QueryStats stats;
    const std::uint64_t n = query_bat(file, query, [](Vec3, std::span<const double>) {},
                                      &stats);
    EXPECT_EQ(n, 10'000u);
    EXPECT_EQ(stats.points_emitted, 10'000u);
    // A boxless query is fully contained everywhere: every point should go
    // through the fast path, none through per-point testing.
    EXPECT_EQ(stats.points_fast_path, 10'000u);
    EXPECT_EQ(stats.points_tested, 0u);
    EXPECT_GE(stats.points_tested + stats.points_fast_path, stats.points_emitted);
}

TEST(BatQueryTest, StatsAccumulateAcrossCalls) {
    // QueryStats is documented to accumulate so one struct can sum a
    // multi-leaf read; a second identical query must double every counter.
    const Fixture fx(10'000, 1, 19);
    const BatFile file = fx.file();
    BatQuery query;
    query.box = Box({0.f, 0.f, 0.f}, {2.f, 2.f, 2.f});
    QueryStats stats;
    const std::uint64_t first =
        query_bat(file, query, [](Vec3, std::span<const double>) {}, &stats);
    const QueryStats after_one = stats;
    const std::uint64_t second =
        query_bat(file, query, [](Vec3, std::span<const double>) {}, &stats);
    EXPECT_EQ(first, second);
    EXPECT_EQ(stats.points_emitted, 2 * after_one.points_emitted);
    EXPECT_EQ(stats.points_tested, 2 * after_one.points_tested);
    EXPECT_EQ(stats.points_fast_path, 2 * after_one.points_fast_path);
    EXPECT_EQ(stats.shallow_nodes_visited, 2 * after_one.shallow_nodes_visited);
    EXPECT_EQ(stats.treelet_nodes_visited, 2 * after_one.treelet_nodes_visited);
    EXPECT_EQ(stats.pruned_by_box, 2 * after_one.pruned_by_box);
    EXPECT_EQ(stats.pruned_by_bitmap, 2 * after_one.pruned_by_bitmap);
}

TEST(BatQueryTest, RangeSinkMatchesPointCallback) {
    // The contiguous-range fast path must emit exactly the particles the
    // per-point path does, for covering, partial, and boxless queries.
    const Fixture fx(20'000, 2, 31);
    const BatFile file = fx.file();
    struct Case {
        std::optional<Box> box;
        bool covers_all = false;
    };
    const std::vector<Case> cases = {
        {std::nullopt, true},
        {Box({-1.f, -1.f, -1.f}, {2.f, 2.f, 2.f}), true},     // covers the unit box
        {Box({0.25f, 0.25f, 0.25f}, {0.75f, 0.75f, 0.75f})},  // partial overlap
    };
    for (const Case& c : cases) {
        BatQuery query;
        query.box = c.box;
        const std::vector<testing::ParticleKey> expected = collect(file, query);

        ParticleSet via_sink(fx.original.attr_names());
        QuerySink sink;
        sink.point = [&via_sink](Vec3 p, std::span<const double> attrs) {
            via_sink.push_back(p, attrs);
        };
        sink.range = [&via_sink](const BatTreeletView& view, std::uint32_t begin,
                                 std::uint32_t end) {
            const std::uint32_t n = end - begin;
            std::vector<std::span<const double>> cols;
            for (const std::span<const double> a : view.attrs) {
                cols.push_back(a.subspan(begin, n));
            }
            via_sink.append_block(
                view.positions.subspan(3 * std::size_t{begin}, 3 * std::size_t{n}), cols);
        };
        QueryStats stats;
        const std::uint64_t n = query_bat(file, query, sink, &stats);
        EXPECT_EQ(n, via_sink.count());
        std::vector<testing::ParticleKey> got = testing::particle_keys(via_sink);
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, expected);
        if (c.covers_all) {
            // Covering queries should take the fast path for everything.
            EXPECT_EQ(stats.points_fast_path, n);
        }
        EXPECT_GE(stats.points_tested + stats.points_fast_path, stats.points_emitted);
    }
}

TEST(BatQueryTest, FastPathRespectsProgressiveWindows) {
    // Quality-window partitioning must survive range emission: the windows
    // (0,0.25], (0.25,0.5], ... still cover every particle exactly once.
    const Fixture fx(15'000, 1, 37);
    const BatFile file = fx.file();
    std::vector<testing::ParticleKey> all;
    std::uint64_t fast_path_total = 0;
    for (int step = 0; step < 4; ++step) {
        BatQuery query;
        query.quality_lo = static_cast<float>(step) / 4.f;
        query.quality_hi = static_cast<float>(step + 1) / 4.f;
        ParticleSet part(fx.original.attr_names());
        QuerySink sink;
        sink.point = [&part](Vec3 p, std::span<const double> attrs) {
            part.push_back(p, attrs);
        };
        sink.range = [&part](const BatTreeletView& view, std::uint32_t begin,
                             std::uint32_t end) {
            const std::uint32_t n = end - begin;
            std::vector<std::span<const double>> cols;
            for (const std::span<const double> a : view.attrs) {
                cols.push_back(a.subspan(begin, n));
            }
            part.append_block(
                view.positions.subspan(3 * std::size_t{begin}, 3 * std::size_t{n}), cols);
        };
        QueryStats stats;
        query_bat(file, query, sink, &stats);
        fast_path_total += stats.points_fast_path;
        const auto keys = testing::particle_keys(part);
        all.insert(all.end(), keys.begin(), keys.end());
    }
    // Boxless queries take the fast path exclusively.
    EXPECT_EQ(fast_path_total, 15'000u);
    std::sort(all.begin(), all.end());
    EXPECT_EQ(all, testing::particle_keys(fx.original));
}

// ---- progressive reads -------------------------------------------------------

TEST(BatQueryTest, QualityWindowsPartitionTheData) {
    // Reading (0, 0.1], (0.1, 0.2], ..., (0.9, 1.0] must return every
    // particle exactly once (paper §V-B progressive reads).
    const Fixture fx(25'000, 2, 23);
    const BatFile file = fx.file();
    std::vector<testing::ParticleKey> all;
    for (int step = 0; step < 10; ++step) {
        BatQuery query;
        query.quality_lo = static_cast<float>(step) / 10.f;
        query.quality_hi = static_cast<float>(step + 1) / 10.f;
        auto part = collect(file, query);
        all.insert(all.end(), part.begin(), part.end());
    }
    std::sort(all.begin(), all.end());
    EXPECT_EQ(all, testing::particle_keys(fx.original));
}

TEST(BatQueryTest, QualityMonotone) {
    const Fixture fx(25'000, 1, 29);
    const BatFile file = fx.file();
    std::uint64_t prev = 0;
    for (double q : {0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
        BatQuery query;
        query.quality_hi = static_cast<float>(q);
        const std::uint64_t n =
            query_bat(file, query, [](Vec3, std::span<const double>) {});
        EXPECT_GE(n, prev);
        prev = n;
    }
    EXPECT_EQ(prev, 25'000u);
}

TEST(BatQueryTest, CoarseQualityIsRepresentativeSubset) {
    const Fixture fx(50'000, 1, 31, /*clustered=*/true);
    const BatFile file = fx.file();
    BatQuery query;
    query.quality_hi = 0.1f;
    Box seen;
    const std::uint64_t n = query_bat(
        file, query, [&seen](Vec3 p, std::span<const double>) { seen.extend(p); });
    EXPECT_GT(n, 0u);
    EXPECT_LT(n, 50'000u);
    // The coarse subset must span a large part of the data bounds (LOD
    // points come from every treelet).
    const Vec3 data_ext = file.bounds().extent();
    const Vec3 seen_ext = seen.extent();
    EXPECT_GT(seen_ext.x, 0.5f * data_ext.x);
    EXPECT_GT(seen_ext.y, 0.5f * data_ext.y);
    EXPECT_GT(seen_ext.z, 0.5f * data_ext.z);
}

TEST(BatQueryTest, ProgressiveWithSpatialFilterConsistent) {
    const Fixture fx(30'000, 2, 37);
    const BatFile file = fx.file();
    const Box box({0.2f, 0.0f, 0.2f}, {0.8f, 1.0f, 0.8f});
    std::vector<testing::ParticleKey> progressive;
    for (int step = 0; step < 4; ++step) {
        BatQuery query;
        query.box = box;
        query.quality_lo = static_cast<float>(step) / 4.f;
        query.quality_hi = static_cast<float>(step + 1) / 4.f;
        auto part = collect(file, query);
        progressive.insert(progressive.end(), part.begin(), part.end());
    }
    std::sort(progressive.begin(), progressive.end());
    EXPECT_EQ(progressive, reference(fx.original, box, true));
}

TEST(BatQueryTest, EqualDepthBinningMatchesBruteForce) {
    // Skew one attribute, build with equal-depth binning, and verify every
    // filtered query is exact (no false negatives, false positives removed).
    ParticleSet set = make_uniform_particles(kUnit, 20'000, 2, 71);
    for (double& v : set.attr_mut(0)) {
        v = std::pow(std::abs(v), 5.0);  // heavy skew toward 0
    }
    const ParticleSet original = set;
    BatConfig config;
    config.binning = BinningScheme::equal_depth;
    const auto bytes = serialize_bat(build_bat(std::move(set), config));
    const BatFile file{std::span<const std::byte>(bytes)};
    const auto [lo, hi] = original.attr_range(0);
    for (const double frac : {0.001, 0.01, 0.3}) {
        BatQuery query;
        query.attr_filters.push_back({0, lo, lo + frac * (hi - lo)});
        const auto got = collect(file, query);
        EXPECT_EQ(got, reference(original, Box({-99, -99, -99}, {99, 99, 99}), true, 0,
                                 lo, lo + frac * (hi - lo)))
            << "fraction " << frac;
    }
}

TEST(BatQueryTest, EqualDepthPrunesSkewedQueriesBetter) {
    ParticleSet set = make_uniform_particles(kUnit, 40'000, 1, 73);
    // Correlate the skewed attribute with space so pruning is possible,
    // then compress its dynamic range at the top end.
    for (std::size_t i = 0; i < set.count(); ++i) {
        set.attr_mut(0)[i] = std::pow(static_cast<double>(set.position(i).x), 6.0);
    }
    ParticleSet copy = set;
    BatConfig width_config;
    BatConfig depth_config;
    depth_config.binning = BinningScheme::equal_depth;
    const auto width_bytes = serialize_bat(build_bat(std::move(set), width_config));
    const auto depth_bytes = serialize_bat(build_bat(std::move(copy), depth_config));
    const BatFile width_file{std::span<const std::byte>(width_bytes)};
    const BatFile depth_file{std::span<const std::byte>(depth_bytes)};
    // A narrow query in the dense low-value region: equal-width lumps the
    // whole region into bin 0, equal-depth resolves it.
    BatQuery query;
    query.attr_filters.push_back({0, 0.0, 1e-4});
    QueryStats width_stats;
    QueryStats depth_stats;
    const auto n_width =
        query_bat(width_file, query, [](Vec3, std::span<const double>) {}, &width_stats);
    const auto n_depth =
        query_bat(depth_file, query, [](Vec3, std::span<const double>) {}, &depth_stats);
    EXPECT_EQ(n_width, n_depth);  // both exact
    EXPECT_LT(depth_stats.points_tested, width_stats.points_tested)
        << "equal-depth binning should test fewer candidates on skewed data";
}

TEST(BatQueryTest, InvalidQueriesRejected) {
    const Fixture fx(100, 1, 41);
    const BatFile file = fx.file();
    BatQuery query;
    query.quality_lo = 0.8f;
    query.quality_hi = 0.2f;
    EXPECT_THROW(query_bat(file, query, [](Vec3, std::span<const double>) {}), Error);
    BatQuery bad_attr;
    bad_attr.attr_filters.push_back({5, 0, 1});  // only 1 attribute exists
    EXPECT_THROW(query_bat(file, bad_attr, [](Vec3, std::span<const double>) {}), Error);
    BatQuery inverted;
    inverted.attr_filters.push_back({0, 1.0, -1.0});
    EXPECT_THROW(query_bat(file, inverted, [](Vec3, std::span<const double>) {}), Error);
}

TEST(BatQueryTest, EmptyFileQuery) {
    ParticleSet set(uniform_attr_names(1));
    const auto bytes = serialize_bat(build_bat(std::move(set), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    BatQuery query;
    EXPECT_EQ(query_bat(file, query, [](Vec3, std::span<const double>) {}), 0u);
}

class BatQuerySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatQuerySizes, SpatialCorrectnessAcrossSizes) {
    const Fixture fx(GetParam(), 2, 57 + GetParam());
    const BatFile file = fx.file();
    const Box box({0.3f, 0.3f, 0.3f}, {0.9f, 0.8f, 0.7f});
    BatQuery query;
    query.box = box;
    EXPECT_EQ(collect(file, query), reference(fx.original, box, true));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatQuerySizes,
                         ::testing::Values(1, 2, 10, 100, 1'000, 10'000, 60'000));

}  // namespace
}  // namespace bat
