// Tests for the BAT on-disk format (paper §III-C3, Fig 2): serialization
// round trips, page alignment, dictionary compaction, mmap reads, and
// corruption detection.

#include <gtest/gtest.h>

#include <set>

#include "core/bat_file.hpp"
#include "test_helpers.hpp"
#include "workloads/mixtures.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kUnit({0, 0, 0}, {1, 1, 1});

BatData make_bat(std::size_t n, std::size_t nattrs, std::uint64_t seed) {
    return build_bat(make_uniform_particles(kUnit, n, nattrs, seed), BatConfig{});
}

TEST(BatFileTest, HeaderFieldsSurvive) {
    const BatData bat = make_bat(10'000, 3, 1);
    const auto bytes = serialize_bat(bat);
    const BatFile file{std::span<const std::byte>(bytes)};
    EXPECT_EQ(file.num_particles(), 10'000u);
    EXPECT_EQ(file.num_attrs(), 3u);
    // The auto-adapted subprefix actually used is recorded in the header.
    EXPECT_EQ(file.header().subprefix_bits,
              static_cast<std::uint32_t>(bat.config.subprefix_bits));
    EXPECT_GE(file.header().subprefix_bits, 1u);
    EXPECT_LE(file.header().subprefix_bits, 12u);
    EXPECT_EQ(file.header().lod_per_inner, 8u);
    EXPECT_EQ(file.header().max_leaf_size, 128u);
    EXPECT_EQ(file.num_treelets(), bat.treelets.size());
    EXPECT_EQ(file.shallow_nodes().size(), bat.shallow_nodes.size());
    EXPECT_EQ(file.bounds(), bat.bounds);
    EXPECT_EQ(file.header().file_size, bytes.size());
}

TEST(BatFileTest, AttrTableSurvives) {
    const BatData bat = make_bat(5'000, 4, 2);
    const auto bytes = serialize_bat(bat);
    const BatFile file{std::span<const std::byte>(bytes)};
    for (std::size_t a = 0; a < 4; ++a) {
        EXPECT_EQ(file.attr_names()[a], bat.particles.attr_names()[a]);
        EXPECT_EQ(file.attr_range(a), bat.attr_ranges[a]);
    }
}

TEST(BatFileTest, TreeletsArePageAligned) {
    const BatData bat = make_bat(50'000, 2, 3);
    const auto bytes = serialize_bat(bat);
    const BatFile file{std::span<const std::byte>(bytes)};
    ASSERT_GT(file.num_treelets(), 1u);
    for (std::size_t t = 0; t < file.num_treelets(); ++t) {
        const BatFile::TreeletView view = file.treelet(t);
        EXPECT_EQ(view.num_points > 0, true);
    }
    // Alignment is asserted inside treelet(); also check the directory raw.
    // (The parse would have thrown on misalignment.)
}

TEST(BatFileTest, TreeletContentsMatchBuild) {
    const BatData bat = make_bat(30'000, 2, 4);
    const auto bytes = serialize_bat(bat);
    const BatFile file{std::span<const std::byte>(bytes)};
    ASSERT_EQ(file.num_treelets(), bat.treelets.size());
    for (std::size_t t = 0; t < file.num_treelets(); ++t) {
        const Treelet& built = bat.treelets[t];
        const BatFile::TreeletView view = file.treelet(t);
        ASSERT_EQ(view.nodes.size(), built.nodes.size());
        EXPECT_EQ(view.num_points, built.num_particles);
        EXPECT_EQ(view.max_depth, built.max_depth);
        EXPECT_EQ(view.first_particle, built.first_particle);
        for (std::size_t n = 0; n < view.nodes.size(); ++n) {
            EXPECT_EQ(view.nodes[n].start, built.nodes[n].start);
            EXPECT_EQ(view.nodes[n].count, built.nodes[n].count);
            EXPECT_EQ(view.nodes[n].own_count, built.nodes[n].own_count);
            EXPECT_EQ(view.nodes[n].right_child, built.nodes[n].right_child);
        }
        // Particle payloads: positions and attributes must match the
        // build's reordered arrays.
        for (std::uint32_t i = 0; i < view.num_points; ++i) {
            EXPECT_EQ(view.position(i), bat.particles.position(built.first_particle + i));
            for (std::size_t a = 0; a < 2; ++a) {
                EXPECT_EQ(view.attrs[a][i], bat.particles.attr(a)[built.first_particle + i]);
            }
        }
    }
}

TEST(BatFileTest, DictionaryResolvesToOriginalBitmaps) {
    const BatData bat = make_bat(30'000, 3, 5);
    const auto bytes = serialize_bat(bat);
    const BatFile file{std::span<const std::byte>(bytes)};
    // Dictionary entry 0 is the reserved all-ones bitmap.
    ASSERT_FALSE(file.dictionary().empty());
    EXPECT_EQ(file.dictionary()[kBitmapIdAllOnes], 0xFFFFFFFFu);
    // Shallow bitmaps resolve to the build's values.
    for (std::size_t i = 0; i < bat.shallow_nodes.size(); ++i) {
        for (std::size_t a = 0; a < 3; ++a) {
            EXPECT_EQ(file.shallow_bitmap(i, a), bat.shallow_bitmaps[i * 3 + a]);
        }
    }
    for (std::size_t t = 0; t < file.num_treelets(); ++t) {
        const BatFile::TreeletView view = file.treelet(t);
        for (std::size_t n = 0; n < view.nodes.size(); ++n) {
            for (std::size_t a = 0; a < 3; ++a) {
                EXPECT_EQ(file.treelet_bitmap(view, n, a),
                          bat.treelets[t].bitmaps[n * 3 + a]);
            }
        }
    }
}

TEST(BatFileTest, DictionaryDeduplicates) {
    const BatData bat = make_bat(100'000, 2, 6);
    const auto bytes = serialize_bat(bat);
    const BatFile file{std::span<const std::byte>(bytes)};
    std::size_t total_bitmaps = bat.shallow_bitmaps.size();
    for (const Treelet& t : bat.treelets) {
        total_bitmaps += t.bitmaps.size();
    }
    EXPECT_LT(file.dictionary().size(), total_bitmaps / 2)
        << "dictionary should be much smaller than the raw bitmap count";
    // Entries are unique.
    std::set<std::uint32_t> unique(file.dictionary().begin(), file.dictionary().end());
    EXPECT_EQ(unique.size(), file.dictionary().size());
}

TEST(BatFileTest, RoundTripThroughDisk) {
    const testing::TempDir dir;
    const BatData bat = make_bat(20'000, 2, 7);
    const auto path = dir.path() / "test.bat";
    write_bat_file(path, bat);
    const BatFile file(path);  // mmap path
    EXPECT_EQ(file.num_particles(), 20'000u);
    EXPECT_EQ(file.num_treelets(), bat.treelets.size());
    const BatFile::TreeletView view = file.treelet(0);
    EXPECT_EQ(view.position(0), bat.particles.position(0));
}

TEST(BatFileTest, EmptyBat) {
    ParticleSet set(uniform_attr_names(2));
    const BatData bat = build_bat(std::move(set), BatConfig{});
    const auto bytes = serialize_bat(bat);
    const BatFile file{std::span<const std::byte>(bytes)};
    EXPECT_EQ(file.num_particles(), 0u);
    EXPECT_EQ(file.num_treelets(), 0u);
    EXPECT_EQ(file.num_attrs(), 2u);
}

TEST(BatFileTest, BadMagicRejected) {
    const BatData bat = make_bat(100, 1, 8);
    auto bytes = serialize_bat(bat);
    bytes[0] = std::byte{0x00};
    EXPECT_THROW(BatFile{std::span<const std::byte>(bytes)}, Error);
}

TEST(BatFileTest, TruncationRejected) {
    const BatData bat = make_bat(100, 1, 9);
    const auto bytes = serialize_bat(bat);
    const std::span<const std::byte> truncated(bytes.data(), bytes.size() / 2);
    EXPECT_THROW(BatFile{truncated}, Error);
}

TEST(BatFileTest, TinyFileRejected) {
    const std::vector<std::byte> bytes(16);
    EXPECT_THROW(BatFile{std::span<const std::byte>(bytes)}, Error);
}

TEST(BatFileTest, LayoutOverheadIsSmall) {
    // Paper §VI-B: the layout requires ~0.9% additional memory. With 4 KB
    // alignment padding the overhead depends on treelet sizes; for realistic
    // sizes it must stay in the low percent range.
    const BatData bat = make_bat(200'000, 7, 10);
    const auto bytes = serialize_bat(bat);
    const BatSizeStats stats = bat_size_stats(bat, bytes.size());
    EXPECT_GT(stats.raw_particle_bytes, 0u);
    EXPECT_LT(stats.overhead_fraction(), 0.03)
        << "layout overhead " << stats.overhead_fraction() * 100 << "%";
}

TEST(BatFileTest, ClusteredDataRoundTrip) {
    const auto blobs = make_random_blobs(kUnit, 4, 20);
    ParticleSet set = make_mixture_particles(kUnit, blobs, 40'000, 3, 21);
    const auto keys = testing::particle_keys(set);
    const BatData bat = build_bat(std::move(set), BatConfig{});
    const auto bytes = serialize_bat(bat);
    const BatFile file{std::span<const std::byte>(bytes)};
    // Reassemble all particles from the file and compare populations.
    ParticleSet reassembled(bat.particles.attr_names());
    for (std::size_t t = 0; t < file.num_treelets(); ++t) {
        const BatFile::TreeletView view = file.treelet(t);
        std::vector<double> attrs(3);
        for (std::uint32_t i = 0; i < view.num_points; ++i) {
            for (std::size_t a = 0; a < 3; ++a) {
                attrs[a] = view.attrs[a][i];
            }
            reassembled.push_back(view.position(i), attrs);
        }
    }
    EXPECT_EQ(testing::particle_keys(reassembled), keys);
}

}  // namespace
}  // namespace bat
