// Tests for the Dataset reader (whole-data-set queries through the
// metadata) and the in-transit BatDataView query path.

#include <gtest/gtest.h>

#include "core/dataset.hpp"
#include "io/writer.hpp"
#include "test_helpers.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/mixtures.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});

struct WrittenDataset {
    testing::TempDir dir;
    ParticleSet global;
    std::filesystem::path meta_path;

    explicit WrittenDataset(std::size_t n = 20'000, std::uint64_t target = 64 << 10) {
        global = make_uniform_particles(kDomain, n, 3, 7);
        const GridDecomp decomp = grid_decomp_3d(8, kDomain);
        const auto per_rank = partition_particles(global, decomp);
        std::vector<Box> bounds;
        for (int r = 0; r < 8; ++r) {
            bounds.push_back(decomp.rank_box(r));
        }
        WriterConfig config;
        config.tree.target_file_size = target;
        config.directory = dir.path();
        config.basename = "ds";
        meta_path = write_particles_serial(per_rank, bounds, config).metadata_path;
    }
};

TEST(DatasetTest, MetadataAccessors) {
    WrittenDataset w;
    Dataset ds(w.meta_path);
    EXPECT_EQ(ds.num_particles(), w.global.count());
    EXPECT_EQ(ds.num_attrs(), 3u);
    EXPECT_EQ(ds.attr_names(), w.global.attr_names());
    EXPECT_EQ(ds.attr_index("attr1"), 1u);
    EXPECT_THROW(ds.attr_index("nope"), Error);
    EXPECT_TRUE(ds.bounds().contains_box(w.global.bounds()));
    const auto [lo, hi] = ds.attr_range(0);
    const auto [elo, ehi] = w.global.attr_range(0);
    EXPECT_DOUBLE_EQ(lo, elo);
    EXPECT_DOUBLE_EQ(hi, ehi);
}

TEST(DatasetTest, FullCollectReturnsEverything) {
    WrittenDataset w;
    Dataset ds(w.meta_path);
    const ParticleSet all = ds.collect(BatQuery{});
    EXPECT_EQ(testing::particle_keys(all), testing::particle_keys(w.global));
}

TEST(DatasetTest, SpatialQueryMatchesBruteForce) {
    WrittenDataset w;
    Dataset ds(w.meta_path);
    const Box box({0.4f, 0.2f, 0.9f}, {1.6f, 1.8f, 1.5f});
    BatQuery query;
    query.box = box;
    const ParticleSet got = ds.collect(query);
    EXPECT_EQ(got.count(), testing::brute_force_query(w.global, box).size());
}

TEST(DatasetTest, LeafPruningSkipsFiles) {
    WrittenDataset w(40'000, 16 << 10);  // many leaves
    Dataset ds(w.meta_path);
    ASSERT_GT(ds.metadata().leaves.size(), 3u);
    // A tiny corner query must not open every leaf file.
    BatQuery query;
    query.box = Box({0, 0, 0}, {0.2f, 0.2f, 0.2f});
    ds.query(query, [](Vec3, std::span<const double>) {});
    EXPECT_LT(ds.open_files(), ds.metadata().leaves.size());
}

TEST(DatasetTest, AttributeQueryAcrossLeaves) {
    WrittenDataset w;
    Dataset ds(w.meta_path);
    const auto [lo, hi] = ds.attr_range(1);
    const double qlo = lo + 0.6 * (hi - lo);
    BatQuery query;
    query.attr_filters.push_back({1, qlo, hi});
    QueryStats stats;
    const std::uint64_t n = ds.query(
        query,
        [qlo](Vec3, std::span<const double> attrs) { EXPECT_GE(attrs[1], qlo); },
        &stats);
    EXPECT_EQ(n, testing::brute_force_query(w.global, Box({-9, -9, -9}, {9, 9, 9}), true, 1,
                                            qlo, hi)
                     .size());
    EXPECT_EQ(stats.points_emitted, n);
}

TEST(DatasetTest, ProgressiveWindowsAcrossLeavesPartition) {
    WrittenDataset w;
    Dataset ds(w.meta_path);
    std::uint64_t total = 0;
    for (int step = 0; step < 5; ++step) {
        BatQuery query;
        query.quality_lo = static_cast<float>(step) / 5.f;
        query.quality_hi = static_cast<float>(step + 1) / 5.f;
        total += ds.query(query, [](Vec3, std::span<const double>) {});
    }
    EXPECT_EQ(total, w.global.count());
}

// ---- in-transit queries on an unwritten BAT --------------------------------

TEST(InTransitTest, DataViewMatchesFileQueries) {
    ParticleSet particles = make_uniform_particles(kDomain, 15'000, 2, 21);
    const ParticleSet original = particles;
    const BatData bat = build_bat(std::move(particles), BatConfig{});
    const auto bytes = serialize_bat(bat);
    const BatFile file{std::span<const std::byte>(bytes)};

    const Box box({0.3f, 0.3f, 0.3f}, {1.5f, 1.2f, 1.9f});
    for (float quality : {0.1f, 0.5f, 1.0f}) {
        BatQuery query;
        query.box = box;
        query.quality_hi = quality;
        std::uint64_t from_file = query_bat(file, query, [](Vec3, std::span<const double>) {});
        std::uint64_t from_memory = query_bat(bat, query, [](Vec3, std::span<const double>) {});
        EXPECT_EQ(from_file, from_memory) << "quality " << quality;
    }
}

TEST(InTransitTest, AttributeFilteringWorksInMemory) {
    ParticleSet particles = make_uniform_particles(kDomain, 10'000, 2, 23);
    const ParticleSet original = particles;
    const BatData bat = build_bat(std::move(particles), BatConfig{});
    const auto [lo, hi] = bat.attr_ranges[0];
    BatQuery query;
    query.attr_filters.push_back({0, lo, lo + 0.3 * (hi - lo)});
    QueryStats stats;
    const std::uint64_t n =
        query_bat(bat, query, [](Vec3, std::span<const double>) {}, &stats);
    EXPECT_EQ(n, testing::brute_force_query(original, Box({-9, -9, -9}, {9, 9, 9}), true, 0,
                                            lo, lo + 0.3 * (hi - lo))
                     .size());
    EXPECT_GT(stats.pruned_by_bitmap, 0u);
}

TEST(InTransitTest, EmptyBatInMemory) {
    ParticleSet particles(uniform_attr_names(1));
    const BatData bat = build_bat(std::move(particles), BatConfig{});
    EXPECT_EQ(query_bat(bat, BatQuery{}, [](Vec3, std::span<const double>) {}), 0u);
}

// ---- recommend_target_size ---------------------------------------------------

TEST(RecommendTargetSizeTest, PowerOfTwo) {
    for (int nranks : {16, 512, 2048, 8192, 43008}) {
        const std::uint64_t t =
            recommend_target_size(32'768ull * nranks, 124, nranks);
        EXPECT_EQ(t & (t - 1), 0u) << t;
        EXPECT_GE(t, 1u << 20);
        EXPECT_LE(t, 512u << 20);
    }
}

TEST(RecommendTargetSizeTest, GrowsWithScale) {
    // Weak scaling (same per-rank bytes): larger runs get larger targets.
    const std::uint64_t small = recommend_target_size(32'768ull * 512, 124, 512);
    const std::uint64_t large = recommend_target_size(32'768ull * 43008, 124, 43008);
    EXPECT_GT(large, small);
}

TEST(RecommendTargetSizeTest, GrowsWithInjection) {
    // The Coal Boiler grows 9x over the run: the recommendation must too.
    const std::uint64_t early = recommend_target_size(4'600'000, 68, 1536);
    const std::uint64_t late = recommend_target_size(41'500'000, 68, 1536);
    EXPECT_GT(late, early);
}

}  // namespace
}  // namespace bat
