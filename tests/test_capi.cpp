// Tests for the C API: write/commit/query through the array-based attribute
// interface, plus error paths.

#include <gtest/gtest.h>

#include <cstring>

#include "capi/bat_c.h"
#include "test_helpers.hpp"
#include "workloads/uniform.hpp"

namespace {

using bat::Box;
using bat::ParticleSet;
using bat::Vec3;

struct Collected {
    std::vector<std::array<float, 3>> positions;
    std::vector<std::vector<double>> attrs;
    std::size_t nattrs = 0;
};

void collect_cb(const float position[3], const double* attributes, void* user) {
    auto* c = static_cast<Collected*>(user);
    c->positions.push_back({position[0], position[1], position[2]});
    c->attrs.emplace_back(attributes, attributes + c->nattrs);
}

struct WrittenDataset {
    bat::testing::TempDir dir;
    std::string meta_path;
    ParticleSet set;

    explicit WrittenDataset(std::size_t n = 5'000) {
        set = bat::make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), n, 2, 77);
        bat_io* io = bat_io_create();
        EXPECT_EQ(bat_io_set_output(io, dir.path().c_str(), "capi"), BAT_OK);
        EXPECT_EQ(bat_io_set_target_size(io, 1 << 20), BAT_OK);
        EXPECT_EQ(bat_io_set_positions(io, set.positions().data(), set.count()), BAT_OK);
        EXPECT_EQ(bat_io_add_attribute(io, "a0", set.attr(0).data()), BAT_OK);
        EXPECT_EQ(bat_io_add_attribute(io, "a1", set.attr(1).data()), BAT_OK);
        EXPECT_EQ(bat_io_commit(io), BAT_OK) << bat_io_last_error(io);
        meta_path = bat_io_metadata_path(io);
        bat_io_destroy(io);
    }
};

TEST(CApiTest, WriteAndFullRead) {
    WrittenDataset ds;
    ASSERT_FALSE(ds.meta_path.empty());
    bat_dataset* dataset = bat_dataset_open(ds.meta_path.c_str());
    ASSERT_NE(dataset, nullptr);
    EXPECT_EQ(bat_dataset_num_particles(dataset), ds.set.count());
    EXPECT_EQ(bat_dataset_num_attributes(dataset), 2u);
    EXPECT_STREQ(bat_dataset_attribute_name(dataset, 0), "a0");
    EXPECT_STREQ(bat_dataset_attribute_name(dataset, 1), "a1");
    EXPECT_EQ(bat_dataset_attribute_name(dataset, 5), nullptr);

    Collected c;
    c.nattrs = 2;
    const uint64_t n =
        bat_dataset_query(dataset, nullptr, nullptr, -1, 0, 0, 0.f, 1.f, collect_cb, &c);
    EXPECT_EQ(n, ds.set.count());
    EXPECT_EQ(c.positions.size(), ds.set.count());
    bat_dataset_close(dataset);
}

TEST(CApiTest, SpatialQuery) {
    WrittenDataset ds;
    bat_dataset* dataset = bat_dataset_open(ds.meta_path.c_str());
    ASSERT_NE(dataset, nullptr);
    const float lo[3] = {0.2f, 0.2f, 0.2f};
    const float hi[3] = {0.6f, 0.6f, 0.6f};
    Collected c;
    c.nattrs = 2;
    const uint64_t n =
        bat_dataset_query(dataset, lo, hi, -1, 0, 0, 0.f, 1.f, collect_cb, &c);
    const auto expected = bat::testing::brute_force_query(
        ds.set, Box({0.2f, 0.2f, 0.2f}, {0.6f, 0.6f, 0.6f}));
    EXPECT_EQ(n, expected.size());
    for (const auto& p : c.positions) {
        EXPECT_GE(p[0], 0.2f);
        EXPECT_LE(p[0], 0.6f);
    }
    bat_dataset_close(dataset);
}

TEST(CApiTest, AttributeFilterAndRange) {
    WrittenDataset ds;
    bat_dataset* dataset = bat_dataset_open(ds.meta_path.c_str());
    ASSERT_NE(dataset, nullptr);
    double lo = 0, hi = 0;
    ASSERT_EQ(bat_dataset_attribute_range(dataset, 0, &lo, &hi), BAT_OK);
    EXPECT_LT(lo, hi);
    const double qlo = lo + 0.25 * (hi - lo);
    const double qhi = lo + 0.5 * (hi - lo);
    Collected c;
    c.nattrs = 2;
    const uint64_t n =
        bat_dataset_query(dataset, nullptr, nullptr, 0, qlo, qhi, 0.f, 1.f, collect_cb, &c);
    const auto expected = bat::testing::brute_force_query(
        ds.set, Box({-10, -10, -10}, {10, 10, 10}), true, 0, qlo, qhi);
    EXPECT_EQ(n, expected.size());
    for (const auto& attrs : c.attrs) {
        EXPECT_GE(attrs[0], qlo);
        EXPECT_LE(attrs[0], qhi);
    }
    bat_dataset_close(dataset);
}

TEST(CApiTest, ProgressiveQualityWindows) {
    WrittenDataset ds;
    bat_dataset* dataset = bat_dataset_open(ds.meta_path.c_str());
    ASSERT_NE(dataset, nullptr);
    Collected coarse;
    coarse.nattrs = 2;
    const uint64_t n_coarse =
        bat_dataset_query(dataset, nullptr, nullptr, -1, 0, 0, 0.f, 0.1f, collect_cb, &coarse);
    EXPECT_GT(n_coarse, 0u);
    EXPECT_LT(n_coarse, ds.set.count());
    Collected rest;
    rest.nattrs = 2;
    const uint64_t n_rest =
        bat_dataset_query(dataset, nullptr, nullptr, -1, 0, 0, 0.1f, 1.f, collect_cb, &rest);
    EXPECT_EQ(n_coarse + n_rest, ds.set.count());
    bat_dataset_close(dataset);
}

TEST(CApiTest, StrategySelection) {
    bat_io* io = bat_io_create();
    EXPECT_EQ(bat_io_set_strategy(io, "adaptive"), BAT_OK);
    EXPECT_EQ(bat_io_set_strategy(io, "aug"), BAT_OK);
    EXPECT_EQ(bat_io_set_strategy(io, "file-per-process"), BAT_OK);
    EXPECT_EQ(bat_io_set_strategy(io, "bogus"), BAT_ERR);
    EXPECT_NE(std::strstr(bat_io_last_error(io), "bogus"), nullptr);
    bat_io_destroy(io);
}

TEST(CApiTest, ErrorPaths) {
    EXPECT_EQ(bat_dataset_open(nullptr), nullptr);
    EXPECT_EQ(bat_dataset_open("/nonexistent/nope.batmeta"), nullptr);
    bat_io* io = bat_io_create();
    EXPECT_EQ(bat_io_set_target_size(io, 0), BAT_ERR);
    bat_io_destroy(io);
}

TEST(CApiTest, HandleReusableAcrossCommits) {
    bat::testing::TempDir dir;
    const ParticleSet set =
        bat::make_uniform_particles(Box({0, 0, 0}, {1, 1, 1}), 1'000, 1, 5);
    bat_io* io = bat_io_create();
    ASSERT_EQ(bat_io_set_output(io, dir.path().c_str(), "step0"), BAT_OK);
    ASSERT_EQ(bat_io_set_positions(io, set.positions().data(), set.count()), BAT_OK);
    ASSERT_EQ(bat_io_add_attribute(io, "v", set.attr(0).data()), BAT_OK);
    ASSERT_EQ(bat_io_commit(io), BAT_OK);
    const std::string first = bat_io_metadata_path(io);
    ASSERT_EQ(bat_io_set_output(io, dir.path().c_str(), "step1"), BAT_OK);
    ASSERT_EQ(bat_io_set_positions(io, set.positions().data(), set.count()), BAT_OK);
    ASSERT_EQ(bat_io_add_attribute(io, "v", set.attr(0).data()), BAT_OK);
    ASSERT_EQ(bat_io_commit(io), BAT_OK);
    const std::string second = bat_io_metadata_path(io);
    EXPECT_NE(first, second);
    bat_io_destroy(io);
}

}  // namespace
