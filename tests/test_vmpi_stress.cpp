// Stress and property tests for the virtual MPI runtime: randomized
// communication patterns, large payloads, many-to-one storms, wait_all,
// and interleaved collectives with point-to-point traffic — the traffic
// shapes the two-phase pipelines generate at scale.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>

#include "util/rng.hpp"
#include "vmpi/comm.hpp"

namespace bat::vmpi {
namespace {

TEST(VmpiStressTest, ManyToOneStorm) {
    // Every rank fires a burst of messages at rank 0 (aggregation incast).
    const int n = 12;
    const int per_rank = 40;
    Runtime::run(n, [n, per_rank](Comm& comm) {
        if (comm.rank() != 0) {
            for (int i = 0; i < per_rank; ++i) {
                const int value = comm.rank() * 1000 + i;
                comm.isend_value(0, 3, value);
            }
            return;
        }
        std::vector<int> next_expected(static_cast<std::size_t>(n), 0);
        for (int got = 0; got < (n - 1) * per_rank; ++got) {
            int from = -1;
            const Bytes b = comm.recv(kAnySource, 3, &from);
            int value = 0;
            std::memcpy(&value, b.data(), sizeof(int));
            // FIFO per channel: messages from one sender arrive in order.
            EXPECT_EQ(value, from * 1000 + next_expected[static_cast<std::size_t>(from)]);
            ++next_expected[static_cast<std::size_t>(from)];
        }
    });
}

TEST(VmpiStressTest, RandomizedAllToAllTraffic) {
    const int n = 8;
    Runtime::run(n, [n](Comm& comm) {
        Pcg32 rng(static_cast<std::uint64_t>(comm.rank()) + 777);
        // Everyone sends a random-sized payload to every other rank; the
        // checksum verifies integrity.
        std::vector<std::uint64_t> sent_sum(static_cast<std::size_t>(n), 0);
        for (int dst = 0; dst < n; ++dst) {
            const std::uint32_t len = 1 + rng.next_bounded(4096);
            Bytes payload(len);
            std::uint64_t sum = 0;
            for (auto& byte : payload) {
                const auto v = static_cast<std::uint8_t>(rng.next_bounded(256));
                byte = static_cast<std::byte>(v);
                sum += v;
            }
            sent_sum[static_cast<std::size_t>(dst)] = sum;
            comm.isend(dst, 9, std::move(payload));
            comm.isend_value(dst, 10, sum);
        }
        for (int src = 0; src < n; ++src) {
            const Bytes payload = comm.recv(src, 9);
            const auto expected = comm.recv_value<std::uint64_t>(src, 10);
            std::uint64_t sum = 0;
            for (std::byte b : payload) {
                sum += static_cast<std::uint8_t>(b);
            }
            EXPECT_EQ(sum, expected);
        }
    });
}

TEST(VmpiStressTest, LargePayloadIntegrity) {
    Runtime::run(2, [](Comm& comm) {
        const std::size_t len = 32 << 20;  // 32 MB (a large aggregator leaf)
        if (comm.rank() == 0) {
            Bytes payload(len);
            for (std::size_t i = 0; i < len; i += 4096) {
                payload[i] = static_cast<std::byte>(i / 4096);
            }
            comm.isend(1, 1, std::move(payload));
        } else {
            const Bytes payload = comm.recv(0, 1);
            ASSERT_EQ(payload.size(), len);
            for (std::size_t i = 0; i < len; i += 4096) {
                EXPECT_EQ(payload[i], static_cast<std::byte>(i / 4096));
            }
        }
    });
}

TEST(VmpiStressTest, WaitAllCompletesMixedRequests) {
    Runtime::run(4, [](Comm& comm) {
        std::vector<Bytes> inboxes(3);
        std::vector<Request> reqs;
        for (int r = 0, slot = 0; r < 4; ++r) {
            if (r == comm.rank()) {
                continue;
            }
            reqs.push_back(comm.irecv(r, 5, inboxes[static_cast<std::size_t>(slot++)]));
        }
        for (int r = 0; r < 4; ++r) {
            if (r != comm.rank()) {
                comm.isend_value(r, 5, comm.rank());
            }
        }
        wait_all(reqs);
        for (const Bytes& b : inboxes) {
            EXPECT_EQ(b.size(), sizeof(int));
        }
    });
}

TEST(VmpiStressTest, CollectivesInterleavedWithP2p) {
    const int n = 6;
    Runtime::run(n, [n](Comm& comm) {
        // p2p traffic in flight across a sequence of collectives.
        comm.isend_value((comm.rank() + 1) % n, 7, comm.rank());
        const int sum = comm.allreduce(1, [](int a, int b) { return a + b; });
        EXPECT_EQ(sum, n);
        const std::vector<int> all = comm.gather(comm.rank(), 0);
        if (comm.rank() == 0) {
            EXPECT_EQ(static_cast<int>(all.size()), n);
        }
        comm.barrier();
        const int got = comm.recv_value<int>((comm.rank() + n - 1) % n, 7);
        EXPECT_EQ(got, (comm.rank() + n - 1) % n);
    });
}

TEST(VmpiStressTest, RepeatedIbarrierRounds) {
    // The DataService runs many ibarrier-delimited rounds back to back.
    Runtime::run(5, [](Comm& comm) {
        for (int round = 0; round < 50; ++round) {
            Request barrier = comm.ibarrier();
            while (!barrier.test()) {
                std::this_thread::yield();
            }
        }
    });
}

TEST(VmpiStressTest, ProbeUnderConcurrentTraffic) {
    Runtime::run(3, [](Comm& comm) {
        if (comm.rank() == 0) {
            // Server: answer exactly 20 queries from anyone.
            for (int served = 0; served < 20; ++served) {
                int from = -1;
                while (!comm.iprobe(kAnySource, 11, &from)) {
                    std::this_thread::yield();
                }
                const Bytes q = comm.recv(from, 11);
                comm.isend(from, 12, q);  // echo
            }
        } else {
            for (int i = 0; i < 10; ++i) {
                comm.isend_value(0, 11, comm.rank() * 100 + i);
                const int echoed = comm.recv_value<int>(0, 12);
                EXPECT_EQ(echoed, comm.rank() * 100 + i);
            }
        }
    });
}

class VmpiScale : public ::testing::TestWithParam<int> {};

TEST_P(VmpiScale, AggregationShapedTraffic) {
    // The write pipeline's exact pattern: gather to 0, scatter, incast to a
    // few aggregators, gatherv of reports.
    const int n = GetParam();
    Runtime::run(n, [n](Comm& comm) {
        const std::vector<int> counts = comm.gather(comm.rank() + 1, 0);
        std::vector<Bytes> assignments;
        if (comm.rank() == 0) {
            EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0),
                      n * (n + 1) / 2);
            for (int r = 0; r < n; ++r) {
                Bytes b(sizeof(int));
                const int agg = r % std::max(1, n / 4);
                std::memcpy(b.data(), &agg, sizeof(int));
                assignments.push_back(std::move(b));
            }
        }
        const Bytes mine = comm.scatterv(std::move(assignments), 0);
        int my_agg = 0;
        std::memcpy(&my_agg, mine.data(), sizeof(int));
        comm.isend_value(my_agg, 21, comm.rank());
        // Aggregators receive their flock.
        if (comm.rank() < std::max(1, n / 4)) {
            int expected = 0;
            for (int r = 0; r < n; ++r) {
                expected += (r % std::max(1, n / 4)) == comm.rank();
            }
            for (int i = 0; i < expected; ++i) {
                comm.recv(kAnySource, 21);
            }
        }
        comm.gatherv(Bytes(8), 0);
        comm.barrier();
    });
}

INSTANTIATE_TEST_SUITE_P(Sizes, VmpiScale, ::testing::Values(2, 5, 16, 32));

}  // namespace
}  // namespace bat::vmpi
