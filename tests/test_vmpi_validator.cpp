// Tests for the vmpi protocol validator: each deliberately buggy program
// must produce its specific diagnostic — and terminate — while a correct
// program must produce none.

#include <gtest/gtest.h>

#include <cstring>

#include "vmpi/comm.hpp"
#include "vmpi/validator.hpp"

namespace bat::vmpi {
namespace {

Bytes make_payload(int value, std::size_t size = 8) {
    Bytes b(size);
    std::memcpy(b.data(), &value, sizeof(int));
    return b;
}

// Fast deadlock declaration so the deliberate-deadlock tests finish quickly;
// the default is deliberately more patient.
ValidatorOptions fast_options() {
    ValidatorOptions opts;
    opts.deadlock_stable_rounds = 50;
    return opts;
}

TEST(VmpiValidator, CleanProgramHasNoDiagnostics) {
    const ValidationReport report = Runtime::run_validated(4, [](Comm& comm) {
        const int next = (comm.rank() + 1) % comm.size();
        const int prev = (comm.rank() + comm.size() - 1) % comm.size();
        comm.isend(next, 7, make_payload(comm.rank()));
        comm.recv(prev, 7);
        comm.barrier();
        comm.allreduce(comm.rank(), [](int a, int b) { return a + b; });
    });
    EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
    EXPECT_FALSE(report.deadlock);
    EXPECT_TRUE(report.rank_errors.empty());
    // Traffic was tracked: 4 user sends plus collective-internal ones.
    EXPECT_GE(report.sends, 4u);
    EXPECT_GE(report.receives, 4u);
    EXPECT_GT(report.collectives, 0u);
}

TEST(VmpiValidator, LeakedRequestIsReported) {
    const ValidationReport report = Runtime::run_validated(1, [](Comm& comm) {
        Bytes out;
        // Posted, never completed, dropped: the request leaks.
        Request r = comm.irecv(0, 5, out);
        (void)r;
    });
    ASSERT_TRUE(report.has(DiagKind::leaked_request)) << report.summary();
    EXPECT_EQ(report.count(DiagKind::leaked_request), 1u);
    const std::string& msg = report.diagnostics[0].message;
    EXPECT_NE(msg.find("irecv"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tag=5"), std::string::npos) << msg;
}

TEST(VmpiValidator, CompletedRequestDoesNotLeak) {
    const ValidationReport report = Runtime::run_validated(1, [](Comm& comm) {
        comm.isend(0, 5, make_payload(1));
        Bytes out;
        Request r = comm.irecv(0, 5, out);
        r.wait();
    });
    EXPECT_FALSE(report.has(DiagKind::leaked_request)) << report.summary();
}

TEST(VmpiValidator, TagOverflowIsReported) {
    const ValidationReport report = Runtime::run_validated(1, [](Comm& comm) {
        const int bad_tag = kMaxUserTag + 3;
        comm.isend(0, bad_tag, make_payload(1));
        comm.recv(0, bad_tag);
    });
    // isend and irecv each flag the reserved tag.
    ASSERT_TRUE(report.has(DiagKind::tag_violation)) << report.summary();
    EXPECT_EQ(report.count(DiagKind::tag_violation), 2u);
    EXPECT_NE(report.diagnostics[0].message.find("reserved"), std::string::npos);
}

TEST(VmpiValidator, NegativeTagIsReported) {
    const ValidationReport report = Runtime::run_validated(1, [](Comm& comm) {
        comm.iprobe(0, -7);
    });
    ASSERT_TRUE(report.has(DiagKind::tag_violation)) << report.summary();
}

TEST(VmpiValidator, CollectiveReservedTagsAreNotFlagged) {
    // Collectives use tags >= kMaxUserTag internally; only *user* traffic
    // in that range is a violation.
    const ValidationReport report = Runtime::run_validated(3, [](Comm& comm) {
        comm.gatherv(make_payload(comm.rank()), 0);
        comm.bcast(make_payload(1), 0);
        comm.alltoallv(std::vector<Bytes>(static_cast<std::size_t>(comm.size())));
        comm.allgatherv(make_payload(comm.rank()));
    });
    EXPECT_FALSE(report.has(DiagKind::tag_violation)) << report.summary();
}

TEST(VmpiValidator, TwoRankSendRecvDeadlockIsDetected) {
    // Classic head-to-head: both ranks receive first, neither has sent.
    // Without the validator this spins forever; with it, every rank is
    // unblocked with DeadlockError and the report names both waits.
    const ValidationReport report = Runtime::run_validated(
        2,
        [](Comm& comm) {
            const int other = 1 - comm.rank();
            comm.recv(other, 1);            // blocks forever
            comm.isend(other, 1, Bytes{});  // never reached
        },
        fast_options());
    EXPECT_TRUE(report.deadlock);
    ASSERT_TRUE(report.has(DiagKind::deadlock)) << report.summary();
    const std::string msg = report.summary();
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("irecv"), std::string::npos) << msg;
}

TEST(VmpiValidator, BarrierDeadlockIsDetected) {
    // Rank 1 exits without entering the barrier: rank 0 can never leave it.
    const ValidationReport report = Runtime::run_validated(
        2,
        [](Comm& comm) {
            if (comm.rank() == 0) {
                comm.barrier();
            }
        },
        fast_options());
    EXPECT_TRUE(report.deadlock);
    const std::string msg = report.summary();
    EXPECT_NE(msg.find("ibarrier"), std::string::npos) << msg;
    EXPECT_NE(msg.find("finished"), std::string::npos) << msg;
}

TEST(VmpiValidator, SizeMismatchIsReported) {
    const ValidationReport report = Runtime::run_validated(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.isend(1, 2, make_payload(1, 3));  // 3 bytes
        } else {
            // Expects sizeof(int) == 4 bytes; the BAT_CHECK still throws,
            // and the validator records why.
            comm.recv_value<int>(0, 2);
        }
    });
    ASSERT_TRUE(report.has(DiagKind::size_mismatch)) << report.summary();
    EXPECT_FALSE(report.rank_errors.empty());
    const std::string msg = report.summary();
    EXPECT_NE(msg.find("3-byte"), std::string::npos) << msg;
}

TEST(VmpiValidator, UnmatchedSendAtFinalizeIsReported) {
    const ValidationReport report = Runtime::run_validated(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.isend(1, 9, make_payload(42));  // rank 1 never receives
        }
    });
    ASSERT_TRUE(report.has(DiagKind::unmatched_send)) << report.summary();
    const std::string msg = report.summary();
    EXPECT_NE(msg.find("tag 9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("never received"), std::string::npos) << msg;
}

TEST(VmpiValidator, StarvedMessageIsReported) {
    ValidatorOptions opts;
    opts.starvation_threshold = 4;
    const ValidationReport report = Runtime::run_validated(
        2,
        [](Comm& comm) {
            if (comm.rank() == 0) {
                comm.isend(1, 7, make_payload(0));  // sits while tag-8s drain
                for (int i = 0; i < 10; ++i) {
                    comm.isend(1, 8, make_payload(i));
                }
            } else {
                for (int i = 0; i < 10; ++i) {
                    comm.recv(0, 8);
                }
                comm.recv(0, 7);  // eventually drained: not unmatched
            }
        },
        opts);
    ASSERT_TRUE(report.has(DiagKind::any_source_starvation)) << report.summary();
    EXPECT_FALSE(report.has(DiagKind::unmatched_send)) << report.summary();
    const std::string msg = report.summary();
    EXPECT_NE(msg.find("tag 7"), std::string::npos) << msg;
}

TEST(VmpiValidator, PromptlyConsumedMessagesAreNotStarved) {
    ValidatorOptions opts;
    opts.starvation_threshold = 4;
    const ValidationReport report = Runtime::run_validated(
        2,
        [](Comm& comm) {
            if (comm.rank() == 0) {
                for (int i = 0; i < 50; ++i) {
                    comm.isend(1, 8, make_payload(i));
                }
            } else {
                for (int i = 0; i < 50; ++i) {
                    comm.recv(0, 8);
                }
            }
        },
        opts);
    EXPECT_FALSE(report.has(DiagKind::any_source_starvation)) << report.summary();
}

TEST(VmpiValidator, RankErrorsAreCapturedNotRethrown) {
    const ValidationReport report = Runtime::run_validated(3, [](Comm& comm) {
        if (comm.rank() == 1) {
            throw Error("deliberate failure on rank 1");
        }
    });
    ASSERT_EQ(report.rank_errors.size(), 1u);
    EXPECT_NE(report.rank_errors[0].find("deliberate failure"), std::string::npos);
}

TEST(VmpiValidator, DisabledValidatorStaysSilent) {
    // Plain run(): no validation unless BAT_VMPI_VALIDATE is set. The buggy
    // program (unmatched send) must behave exactly as before.
    EXPECT_NO_THROW(Runtime::run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.isend(1, 9, make_payload(1));
        }
    }));
}

TEST(VmpiValidator, ReportSummaryNamesKinds) {
    const ValidationReport report = Runtime::run_validated(1, [](Comm& comm) {
        comm.isend(0, kMaxUserTag, make_payload(1));
    });
    const std::string msg = report.summary();
    EXPECT_NE(msg.find("[tag-violation]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[unmatched-send]"), std::string::npos) << msg;
}

}  // namespace
}  // namespace bat::vmpi
