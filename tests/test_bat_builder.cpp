// Tests for BAT construction (paper §III-C): shallow tree structure,
// treelet invariants, LOD sampling, particle-order integrity, and bitmap
// correctness against brute force.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "core/bat_builder.hpp"
#include "core/bat_file.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "workloads/mixtures.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kUnit({0, 0, 0}, {1, 1, 1});

/// Walk a treelet and verify its structural invariants; returns the set of
/// particle indices covered by own-point ranges (each exactly once).
void check_treelet(const Treelet& treelet, const BatConfig& config) {
    ASSERT_FALSE(treelet.nodes.empty());
    std::vector<int> covered(treelet.num_particles, 0);
    std::function<void(std::size_t, std::uint32_t, std::uint32_t, int)> walk =
        [&](std::size_t index, std::uint32_t lo, std::uint32_t hi, int depth) {
            const TreeletNode& node = treelet.nodes[index];
            EXPECT_EQ(node.start, lo);
            EXPECT_EQ(node.count, hi - lo);
            EXPECT_LE(depth, treelet.max_depth);
            if (node.is_leaf()) {
                EXPECT_EQ(node.own_count, node.count);
                // Leaves only exceed the cap when LOD sampling cannot leave
                // enough particles for two children.
                EXPECT_LE(node.count,
                          static_cast<std::uint32_t>(
                              std::max(config.max_leaf_size, config.lod_per_inner + 1)));
                for (std::uint32_t i = lo; i < hi; ++i) {
                    ++covered[i];
                }
                return;
            }
            EXPECT_EQ(node.own_count, static_cast<std::uint32_t>(config.lod_per_inner));
            for (std::uint32_t i = lo; i < lo + node.own_count; ++i) {
                ++covered[i];
            }
            const auto right = static_cast<std::size_t>(node.right_child);
            ASSERT_LT(right, treelet.nodes.size());
            const std::uint32_t inner_lo = lo + node.own_count;
            const TreeletNode& left_child = treelet.nodes[index + 1];
            const std::uint32_t mid = inner_lo + left_child.count;
            walk(index + 1, inner_lo, mid, depth + 1);
            walk(right, mid, hi, depth + 1);
        };
    walk(0, 0, treelet.num_particles, 0);
    for (std::uint32_t i = 0; i < treelet.num_particles; ++i) {
        EXPECT_EQ(covered[i], 1) << "particle " << i << " owned by " << covered[i]
                                 << " nodes";
    }
}

TEST(BatBuilderTest, EmptyInput) {
    ParticleSet set(uniform_attr_names(2));
    const BatData bat = build_bat(std::move(set), BatConfig{});
    EXPECT_EQ(bat.particles.count(), 0u);
    EXPECT_TRUE(bat.treelets.empty());
    EXPECT_TRUE(bat.shallow_nodes.empty());
}

TEST(BatBuilderTest, SingleParticle) {
    ParticleSet set(uniform_attr_names(1));
    const double v = 3.5;
    set.push_back({0.5f, 0.5f, 0.5f}, std::span(&v, 1));
    const BatData bat = build_bat(std::move(set), BatConfig{});
    EXPECT_EQ(bat.particles.count(), 1u);
    ASSERT_EQ(bat.treelets.size(), 1u);
    ASSERT_EQ(bat.shallow_nodes.size(), 1u);
    EXPECT_TRUE(bat.shallow_nodes[0].is_leaf());
    check_treelet(bat.treelets[0], bat.config);
}

TEST(BatBuilderTest, PreservesParticlePopulation) {
    ParticleSet set = make_uniform_particles(kUnit, 20'000, 3, 42);
    const auto before = testing::particle_keys(set);
    const BatData bat = build_bat(std::move(set), BatConfig{});
    const auto after = testing::particle_keys(bat.particles);
    EXPECT_EQ(before, after) << "build must only reorder particles";
}

TEST(BatBuilderTest, AutoSubprefixTracksParticleCount) {
    // Small inputs must get a short subprefix (few treelets); large inputs
    // approach the configured 12-bit maximum.
    BatConfig config;
    const BatData small = build_bat(make_uniform_particles(kUnit, 2'000, 1, 1), config);
    const BatData large = build_bat(make_uniform_particles(kUnit, 200'000, 1, 1), config);
    EXPECT_LT(small.treelets.size(), 4u);
    EXPECT_GT(large.treelets.size(), small.treelets.size());
    EXPECT_LE(large.config.subprefix_bits, 12);
}

TEST(BatBuilderTest, TreeletsPartitionParticles) {
    const BatData bat = build_bat(make_uniform_particles(kUnit, 50'000, 2, 7), BatConfig{});
    std::uint64_t total = 0;
    std::uint32_t expected_first = 0;
    for (const Treelet& treelet : bat.treelets) {
        EXPECT_EQ(treelet.first_particle, expected_first);
        expected_first += treelet.num_particles;
        total += treelet.num_particles;
    }
    EXPECT_EQ(total, bat.particles.count());
}

TEST(BatBuilderTest, TreeletStructureInvariants) {
    const BatConfig config;
    const BatData bat = build_bat(make_uniform_particles(kUnit, 30'000, 2, 9), config);
    for (const Treelet& treelet : bat.treelets) {
        check_treelet(treelet, config);
    }
}

TEST(BatBuilderTest, TreeletBoundsContainTheirParticles) {
    const BatData bat =
        build_bat(make_uniform_particles(kUnit, 20'000, 1, 13), BatConfig{});
    for (const Treelet& treelet : bat.treelets) {
        for (std::uint32_t i = 0; i < treelet.num_particles; ++i) {
            EXPECT_TRUE(
                treelet.bounds.contains(bat.particles.position(treelet.first_particle + i)));
        }
    }
}

TEST(BatBuilderTest, ShallowTreePreorderAndLeafLinks) {
    const BatData bat =
        build_bat(make_uniform_particles(kUnit, 40'000, 1, 21), BatConfig{});
    std::set<std::int32_t> treelet_refs;
    for (std::size_t i = 0; i < bat.shallow_nodes.size(); ++i) {
        const ShallowNode& node = bat.shallow_nodes[i];
        if (node.is_leaf()) {
            EXPECT_GE(node.treelet, 0);
            EXPECT_TRUE(treelet_refs.insert(node.treelet).second);
        } else {
            EXPECT_GT(static_cast<std::size_t>(node.right_child), i + 1);
            EXPECT_LT(static_cast<std::size_t>(node.right_child), bat.shallow_nodes.size());
        }
    }
    EXPECT_EQ(treelet_refs.size(), bat.treelets.size());
}

TEST(BatBuilderTest, ShallowLeafRegionsContainTreeletBounds) {
    const BatData bat =
        build_bat(make_uniform_particles(kUnit, 40'000, 1, 23), BatConfig{});
    for (const ShallowNode& node : bat.shallow_nodes) {
        if (node.is_leaf()) {
            const Treelet& t = bat.treelets[static_cast<std::size_t>(node.treelet)];
            // Leaf node bounds are the tight treelet bounds by construction.
            EXPECT_EQ(node.bounds, t.bounds);
        }
    }
}

TEST(BatBuilderTest, FewerSubprefixBitsGiveFewerTreelets) {
    BatConfig coarse;
    coarse.subprefix_bits = 6;
    coarse.auto_subprefix = false;
    BatConfig fine;
    fine.subprefix_bits = 15;
    fine.auto_subprefix = false;
    ParticleSet a = make_uniform_particles(kUnit, 30'000, 1, 5);
    ParticleSet b = a;
    const BatData bat_coarse = build_bat(std::move(a), coarse);
    const BatData bat_fine = build_bat(std::move(b), fine);
    EXPECT_LT(bat_coarse.treelets.size(), bat_fine.treelets.size());
}

TEST(BatBuilderTest, AttrRangesMatchData) {
    ParticleSet set = make_uniform_particles(kUnit, 5'000, 3, 31);
    std::vector<std::pair<double, double>> expected(3);
    for (std::size_t a = 0; a < 3; ++a) {
        expected[a] = set.attr_range(a);
    }
    const BatData bat = build_bat(std::move(set), BatConfig{});
    for (std::size_t a = 0; a < 3; ++a) {
        EXPECT_EQ(bat.attr_ranges[a], expected[a]);
    }
}

TEST(BatBuilderTest, DeterministicAcrossRuns) {
    ParticleSet a = make_uniform_particles(kUnit, 10'000, 2, 77);
    ParticleSet b = a;
    BatConfig config;
    config.seed = 99;
    const BatData bat_a = build_bat(std::move(a), config);
    const BatData bat_b = build_bat(std::move(b), config);
    ASSERT_EQ(bat_a.particles.count(), bat_b.particles.count());
    EXPECT_EQ(bat_a.particles.positions().size(), bat_b.particles.positions().size());
    for (std::size_t i = 0; i < bat_a.particles.count(); ++i) {
        EXPECT_EQ(bat_a.particles.position(i), bat_b.particles.position(i));
    }
    ASSERT_EQ(bat_a.treelets.size(), bat_b.treelets.size());
    for (std::size_t t = 0; t < bat_a.treelets.size(); ++t) {
        EXPECT_EQ(bat_a.treelets[t].bitmaps, bat_b.treelets[t].bitmaps);
    }
}

TEST(BatBuilderTest, ParallelBuildPreservesPopulation) {
    ParticleSet set = make_uniform_particles(kUnit, 30'000, 2, 55);
    const auto before = testing::particle_keys(set);
    ThreadPool pool(4);
    const BatData bat = build_bat(std::move(set), BatConfig{}, &pool);
    EXPECT_EQ(testing::particle_keys(bat.particles), before);
    for (const Treelet& treelet : bat.treelets) {
        check_treelet(treelet, bat.config);
    }
}

TEST(BatBuilderTest, PoolBuildByteIdenticalToSerial) {
    // Every parallel decomposition in the build (radix sort blocks, encode
    // chunks, treelet grains, reorder) must be schedule-independent: a
    // pooled build serializes to exactly the bytes the serial build makes.
    ParticleSet a = make_uniform_particles(kUnit, 60'000, 3, 123);
    ParticleSet b = a;
    BatConfig config;
    config.seed = 7;
    const BatData serial = build_bat(std::move(a), config, nullptr);
    ThreadPool pool(4);
    const BatData pooled = build_bat(std::move(b), config, &pool);
    EXPECT_EQ(serialize_bat(serial), serialize_bat(pooled));
}

// ---- bitmaps ---------------------------------------------------------------

TEST(BitmapTest, BinBoundaries) {
    EXPECT_EQ(bitmap_bin(0.0, 0.0, 1.0), 0);
    EXPECT_EQ(bitmap_bin(1.0, 0.0, 1.0), 31);
    EXPECT_EQ(bitmap_bin(0.5, 0.0, 1.0), 16);
    EXPECT_EQ(bitmap_bin(-5.0, 0.0, 1.0), 0);   // clamped below
    EXPECT_EQ(bitmap_bin(5.0, 0.0, 1.0), 31);   // clamped above
    EXPECT_EQ(bitmap_bin(3.0, 3.0, 3.0), 0);    // degenerate range
}

TEST(BitmapTest, RangeBitmapCoversInterval) {
    // Bins are half-open [lo, hi): every bin that could bin a value in
    // [0.25, 0.5] must be set; bins strictly outside must not be.
    const std::uint32_t bits = bitmap_for_range(0.25, 0.5, 0.0, 1.0);
    for (int b = 0; b < kBitmapBins; ++b) {
        const double bin_lo = b / 32.0;
        const double bin_hi = (b + 1) / 32.0;
        const bool holds_query_value = bin_hi > 0.25 && bin_lo <= 0.5;
        EXPECT_EQ((bits & (1u << b)) != 0, holds_query_value) << "bin " << b;
    }
}

TEST(BitmapTest, DisjointRangeGivesZero) {
    EXPECT_EQ(bitmap_for_range(2.0, 3.0, 0.0, 1.0), 0u);
    EXPECT_EQ(bitmap_for_range(-2.0, -1.0, 0.0, 1.0), 0u);
}

TEST(BitmapTest, DegenerateAttrRange) {
    EXPECT_EQ(bitmap_for_range(3.0, 3.0, 3.0, 3.0), 1u);
}

TEST(BitmapTest, CombineWithOrAndTestWithAnd) {
    const std::uint32_t a = bitmap_for_range(0.0, 0.2, 0.0, 1.0);
    const std::uint32_t b = bitmap_for_range(0.8, 1.0, 0.0, 1.0);
    EXPECT_EQ(a & b, 0u);
    const std::uint32_t merged = a | b;
    EXPECT_NE(merged & bitmap_for_range(0.1, 0.1, 0.0, 1.0), 0u);
    EXPECT_NE(merged & bitmap_for_range(0.9, 0.9, 0.0, 1.0), 0u);
}

// ---- bin edges (equal-width and equal-depth, §VII-A) ------------------------

TEST(BinEdgesTest, EqualWidthMatchesLegacyBinning) {
    const BinEdges edges = equal_width_edges(-2.0, 6.0);
    ASSERT_EQ(edges.size(), static_cast<std::size_t>(kBitmapBins + 1));
    EXPECT_DOUBLE_EQ(edges.front(), -2.0);
    EXPECT_DOUBLE_EQ(edges.back(), 6.0);
    Pcg32 rng(3);
    for (int i = 0; i < 500; ++i) {
        const double v = -2.0 + 8.0 * rng.next_double();
        EXPECT_EQ(bin_of(v, edges), bitmap_bin(v, -2.0, 6.0)) << v;
    }
    EXPECT_EQ(bin_of(-2.0, edges), 0);
    EXPECT_EQ(bin_of(6.0, edges), kBitmapBins - 1);
    EXPECT_EQ(bin_of(-100.0, edges), 0);
    EXPECT_EQ(bin_of(100.0, edges), kBitmapBins - 1);
}

TEST(BinEdgesTest, EqualDepthBalancesSkewedData) {
    // Heavily skewed values: x^8 in [0,1]. Equal-width packs nearly all
    // values into bin 0; equal-depth spreads them across bins.
    std::vector<double> values(20'000);
    Pcg32 rng(5);
    for (double& v : values) {
        v = std::pow(rng.next_double(), 8.0);
    }
    const BinEdges eq_width = equal_width_edges(0.0, 1.0);
    const BinEdges eq_depth = equal_depth_edges(values);
    std::vector<std::uint64_t> width_counts(kBitmapBins, 0);
    std::vector<std::uint64_t> depth_counts(kBitmapBins, 0);
    for (double v : values) {
        ++width_counts[static_cast<std::size_t>(bin_of(v, eq_width))];
        ++depth_counts[static_cast<std::size_t>(bin_of(v, eq_depth))];
    }
    const auto max_width = *std::max_element(width_counts.begin(), width_counts.end());
    const auto max_depth = *std::max_element(depth_counts.begin(), depth_counts.end());
    EXPECT_GT(max_width, values.size() / 2);  // equal-width collapses
    EXPECT_LT(max_depth, values.size() / 8);  // equal-depth spreads
}

/// The pre-multi-select equal_depth_edges: strided sample, full std::sort,
/// quantile picks. The nth_element version must stay value-identical to it.
BinEdges reference_equal_depth(std::span<const double> values,
                               std::size_t max_sample = 65536) {
    if (values.empty()) {
        return equal_width_edges(0.0, 0.0);
    }
    const std::size_t stride = values.size() > max_sample
                                   ? (values.size() + max_sample - 1) / max_sample
                                   : 1;
    std::vector<double> sample;
    for (std::size_t i = 0; i < values.size(); i += stride) {
        sample.push_back(values[i]);
    }
    std::sort(sample.begin(), sample.end());
    BinEdges edges(kBitmapBins + 1);
    for (int b = 0; b <= kBitmapBins; ++b) {
        const std::size_t idx =
            std::min(sample.size() - 1,
                     static_cast<std::size_t>(b) * sample.size() / kBitmapBins);
        edges[static_cast<std::size_t>(b)] = sample[idx];
    }
    edges.front() = sample.front();
    edges.back() = sample.back();
    for (int b = 1; b <= kBitmapBins; ++b) {
        edges[static_cast<std::size_t>(b)] =
            std::max(edges[static_cast<std::size_t>(b)],
                     edges[static_cast<std::size_t>(b - 1)]);
    }
    return edges;
}

TEST(BinEdgesTest, EqualDepthEmptyInput) {
    const BinEdges edges = equal_depth_edges({});
    ASSERT_EQ(edges.size(), static_cast<std::size_t>(kBitmapBins) + 1);
    for (double e : edges) {
        EXPECT_EQ(e, 0.0);
    }
}

TEST(BinEdgesTest, EqualDepthSingleValue) {
    const std::vector<double> one{3.25};
    const BinEdges edges = equal_depth_edges(one);
    ASSERT_EQ(edges.size(), static_cast<std::size_t>(kBitmapBins) + 1);
    for (double e : edges) {
        EXPECT_EQ(e, 3.25);
    }
    EXPECT_EQ(bin_of(3.25, edges), kBitmapBins - 1);
}

TEST(BinEdgesTest, EqualDepthConstantValues) {
    const std::vector<double> constant(10'000, -7.5);
    const BinEdges edges = equal_depth_edges(constant);
    for (double e : edges) {
        EXPECT_EQ(e, -7.5);
    }
}

TEST(BinEdgesTest, EqualDepthAdversarialDistributions) {
    // Each case must match the full-sort reference edge-for-edge: two
    // distinct values, a sorted ramp, a reversed ramp, alternating
    // extremes, one outlier in a constant sea, and heavy duplication.
    std::vector<std::vector<double>> cases;
    cases.push_back({1.0, 2.0});
    std::vector<double> ramp(1'000);
    for (std::size_t i = 0; i < ramp.size(); ++i) {
        ramp[i] = static_cast<double>(i);
    }
    cases.push_back(ramp);
    cases.emplace_back(ramp.rbegin(), ramp.rend());
    std::vector<double> alternating(999);
    for (std::size_t i = 0; i < alternating.size(); ++i) {
        alternating[i] = (i % 2 == 0) ? -1e300 : 1e300;
    }
    cases.push_back(alternating);
    std::vector<double> outlier(5'000, 2.0);
    outlier[4'321] = 1e9;
    cases.push_back(outlier);
    std::vector<double> dups(2'048);
    Pcg32 dup_rng(11);
    for (double& v : dups) {
        v = static_cast<double>(dup_rng.next_bounded(5));
    }
    cases.push_back(dups);
    for (const auto& values : cases) {
        const BinEdges got = equal_depth_edges(values);
        const BinEdges want = reference_equal_depth(values);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i], want[i]) << "case size " << values.size() << " edge " << i;
        }
    }
}

TEST(BinEdgesTest, EqualDepthMatchesFullSortReference) {
    // Randomized sweep over sizes bracketing the bin count and the
    // max_sample stride cutoff (70'000 > 65'536 exercises stride > 1).
    Pcg32 rng(23);
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{31},
                                std::size_t{32}, std::size_t{33}, std::size_t{1'000},
                                std::size_t{70'000}}) {
        std::vector<double> values(n);
        for (double& v : values) {
            v = -50.0 + 100.0 * rng.next_double();
        }
        const BinEdges got = equal_depth_edges(values);
        const BinEdges want = reference_equal_depth(values);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], want[i]) << "n=" << n << " edge " << i;
        }
        // An explicit tiny max_sample uses the same stride in both paths.
        const BinEdges got_s = equal_depth_edges(values, 100);
        const BinEdges want_s = reference_equal_depth(values, 100);
        for (std::size_t i = 0; i < got_s.size(); ++i) {
            ASSERT_EQ(got_s[i], want_s[i]) << "n=" << n << " strided edge " << i;
        }
    }
}

TEST(BinEdgesTest, EdgesAreMonotone) {
    std::vector<double> values(1'000, 5.0);  // constant data
    values[0] = 1.0;
    const BinEdges edges = equal_depth_edges(values);
    for (std::size_t i = 1; i < edges.size(); ++i) {
        EXPECT_GE(edges[i], edges[i - 1]);
    }
}

TEST(BinEdgesTest, RangeBitmapNeverMissesValues) {
    std::vector<double> values(5'000);
    Pcg32 rng(7);
    for (double& v : values) {
        v = std::pow(rng.next_double(), 4.0) * 10.0;
    }
    const BinEdges edges = equal_depth_edges(values);
    // Any value's bin must be set in any query bitmap whose range holds it.
    for (int i = 0; i < 200; ++i) {
        const double v = values[rng.next_bounded(5'000)];
        const double lo = v - rng.next_double();
        const double hi = v + rng.next_double();
        const std::uint32_t bits = bitmap_for_range(lo, hi, edges);
        EXPECT_NE(bits & (1u << bin_of(v, edges)), 0u) << v;
    }
}

TEST(BatBuilderTest, EqualDepthBuildKeepsBitmapInvariant) {
    BatConfig config;
    config.binning = BinningScheme::equal_depth;
    const BatData bat = build_bat(make_uniform_particles(kUnit, 8'000, 2, 47), config);
    ASSERT_EQ(bat.attr_edges.size(), 2u);
    for (const Treelet& treelet : bat.treelets) {
        for (std::size_t n = 0; n < treelet.nodes.size(); ++n) {
            const TreeletNode& node = treelet.nodes[n];
            for (std::size_t a = 0; a < 2; ++a) {
                std::uint32_t expected = 0;
                for (std::uint32_t i = 0; i < node.count; ++i) {
                    const double v =
                        bat.particles.attr(a)[treelet.first_particle + node.start + i];
                    expected |= 1u << bin_of(v, bat.attr_edges[a]);
                }
                EXPECT_EQ(treelet.bitmaps[n * 2 + a], expected);
            }
        }
    }
}

TEST(BatBuilderTest, NodeBitmapsNeverMissContainedValues) {
    // No-false-negative property: every particle's attribute bin must be
    // set in every ancestor node's bitmap.
    const BatData bat = build_bat(make_uniform_particles(kUnit, 8'000, 2, 3), BatConfig{});
    const std::size_t nattrs = 2;
    for (const Treelet& treelet : bat.treelets) {
        // For each node, brute-force OR over its full subtree range must be
        // a subset of the stored bitmap (equality for exact construction).
        for (std::size_t n = 0; n < treelet.nodes.size(); ++n) {
            const TreeletNode& node = treelet.nodes[n];
            for (std::size_t a = 0; a < nattrs; ++a) {
                std::uint32_t expected = 0;
                for (std::uint32_t i = 0; i < node.count; ++i) {
                    const double v =
                        bat.particles.attr(a)[treelet.first_particle + node.start + i];
                    expected |=
                        1u << bitmap_bin(v, bat.attr_ranges[a].first, bat.attr_ranges[a].second);
                }
                const std::uint32_t stored = treelet.bitmaps[n * nattrs + a];
                EXPECT_EQ(stored & expected, expected)
                    << "node " << n << " attr " << a << " misses bins";
                EXPECT_EQ(stored, expected) << "exact build should have no extra bins";
            }
        }
    }
}

TEST(BatBuilderTest, RootBitmapCoversEverything) {
    const BatData bat = build_bat(make_uniform_particles(kUnit, 8'000, 2, 19), BatConfig{});
    for (std::size_t a = 0; a < 2; ++a) {
        std::uint32_t expected = 0;
        for (std::size_t i = 0; i < bat.particles.count(); ++i) {
            expected |= 1u << bitmap_bin(bat.particles.attr(a)[i], bat.attr_ranges[a].first,
                                         bat.attr_ranges[a].second);
        }
        EXPECT_EQ(bat.root_bitmap(a), expected);
    }
}

TEST(BatBuilderTest, ClusteredDataStillValid) {
    const auto blobs = make_random_blobs(kUnit, 5, 3);
    ParticleSet set = make_mixture_particles(kUnit, blobs, 25'000, 3, 11);
    const auto before = testing::particle_keys(set);
    const BatData bat = build_bat(std::move(set), BatConfig{});
    EXPECT_EQ(testing::particle_keys(bat.particles), before);
    for (const Treelet& treelet : bat.treelets) {
        check_treelet(treelet, bat.config);
    }
}

TEST(BatBuilderTest, CoincidentParticlesHandled) {
    // All particles at the same point: one treelet, leaf-chain structure.
    ParticleSet set(uniform_attr_names(1));
    const double v = 1.0;
    for (int i = 0; i < 500; ++i) {
        set.push_back({0.25f, 0.25f, 0.25f}, std::span(&v, 1));
    }
    const BatData bat = build_bat(std::move(set), BatConfig{});
    EXPECT_EQ(bat.particles.count(), 500u);
    ASSERT_EQ(bat.treelets.size(), 1u);
    check_treelet(bat.treelets[0], bat.config);
}

class BatBuilderParams
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};  // (lod, leaf, n)

TEST_P(BatBuilderParams, InvariantsAcrossConfigurations) {
    const auto [lod, leaf, n] = GetParam();
    BatConfig config;
    config.lod_per_inner = lod;
    config.max_leaf_size = leaf;
    ParticleSet set = make_uniform_particles(kUnit, static_cast<std::size_t>(n), 2, 101);
    const auto before = testing::particle_keys(set);
    const BatData bat = build_bat(std::move(set), config);
    EXPECT_EQ(testing::particle_keys(bat.particles), before);
    for (const Treelet& treelet : bat.treelets) {
        check_treelet(treelet, config);
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, BatBuilderParams,
                         ::testing::Values(std::tuple{8, 128, 10'000},
                                           std::tuple{4, 64, 10'000},
                                           std::tuple{16, 256, 10'000},
                                           std::tuple{1, 2, 1'000},
                                           std::tuple{8, 128, 100},
                                           std::tuple{2, 8, 5'000}));

}  // namespace
}  // namespace bat
