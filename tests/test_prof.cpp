// Tests for the sampling CPU profiler (obs/prof.hpp): sample capture and
// span/query attribution, pool-origin propagation, the bat-prof-v1 export
// and diff, env-variable arming via re-exec, and interaction with the rest
// of the obs layer (flight records, span-tracking lifetime).
//
// Sampling is statistical, so assertions are deliberately lenient: tests
// burn enough CPU for dozens of expected samples and require only a few.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/output_path.hpp"
#include "obs/prof.hpp"
#include "obs/query_trace.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"

using namespace bat;
using obs::json::Value;

namespace {

/// Burn roughly `cpu_ms` of CPU time (not wall time: the profiler's
/// per-thread timers tick on the CPU clock, so a descheduled thread on a
/// loaded CI box must keep spinning until it has actually consumed its
/// budget).
void burn_cpu(double cpu_ms) {
    const std::clock_t start = std::clock();
    const std::clock_t budget =
        static_cast<std::clock_t>(cpu_ms * CLOCKS_PER_SEC / 1000.0);
    volatile double sink = 0;
    while (std::clock() - start < budget) {
        for (int i = 0; i < 4096; ++i) {
            sink += static_cast<double>(i) * 1e-9;
        }
    }
    (void)sink;
}

/// Fresh profiler state at a high sampling rate so short bursts of CPU
/// yield plenty of samples (1000 Hz is the clamp ceiling: 1 ms interval).
obs::ProfOptions fast_options() {
    obs::ProfOptions opts;
    opts.hz = 1000.0;
    opts.drain_interval = std::chrono::milliseconds(20);
    return opts;
}

std::uint64_t samples_for_stack(const std::vector<obs::ProfStackCount>& stacks,
                                const std::string& frame) {
    std::uint64_t total = 0;
    for (const obs::ProfStackCount& sc : stacks) {
        for (const std::string& f : sc.frames) {
            if (f == frame) {
                total += sc.samples;
                break;
            }
        }
    }
    return total;
}

}  // namespace

TEST(ProfTest, UnsupportedPlatformDegradesToNoops) {
    if (obs::profiler_supported()) {
        GTEST_SKIP() << "platform has per-thread CPU timers";
    }
    EXPECT_FALSE(obs::start_profiler());
    EXPECT_FALSE(obs::profiler_running());
    obs::prof_register_thread("main");
    obs::prof_unregister_thread();
    EXPECT_EQ(obs::prof_totals().samples, 0u);
}

TEST(ProfTest, StartStopCollectsAttributedSamples) {
    if (!obs::profiler_supported()) {
        GTEST_SKIP() << "no per-thread CPU timers on this platform";
    }
    obs::prof_register_thread("main");
    ASSERT_TRUE(obs::start_profiler(fast_options()));
    obs::reset_profiler();
    EXPECT_TRUE(obs::profiler_running());
    EXPECT_TRUE(obs::span_tracking_enabled());

    {
        obs::SpanScope outer("test.outer", "test");
        obs::SpanScope inner("test.inner", "test");
        burn_cpu(80);
    }
    obs::stop_profiler();
    EXPECT_FALSE(obs::profiler_running());

    const obs::ProfTotals totals = obs::prof_totals();
    // ~80 expected at 1000 Hz; require a handful.
    EXPECT_GE(totals.samples, 3u);
    EXPECT_GE(totals.attributed, 3u);
    EXPECT_EQ(totals.dropped, 0u);
    EXPECT_GT(totals.wall_seconds, 0.0);

    const auto stacks = obs::prof_stack_counts();
    EXPECT_GE(samples_for_stack(stacks, "test.inner"), 1u);
    // The span stack is ordered outermost-first in every aggregate.
    for (const obs::ProfStackCount& sc : stacks) {
        for (std::size_t i = 0; i + 1 < sc.frames.size(); ++i) {
            if (sc.frames[i] == "test.inner") {
                EXPECT_NE(sc.frames[i + 1], "test.outer");
            }
        }
    }
}

TEST(ProfTest, ReadOwnSpanStackReportsOpenSpans) {
    const bool prev = obs::span_tracking_enabled();
    obs::set_span_tracking(true);
    obs::health_detail::ensure_span_stack();

    const char* frames[8] = {};
    EXPECT_EQ(obs::health_detail::read_own_span_stack(frames, 8), 0);
    EXPECT_EQ(obs::health_detail::innermost_span(), nullptr);
    {
        obs::SpanScope a("unit.a", "test");
        {
            obs::SpanScope b("unit.b", "test");
            const int depth = obs::health_detail::read_own_span_stack(frames, 8);
            ASSERT_EQ(depth, 2);
            EXPECT_STREQ(frames[0], "unit.a");
            EXPECT_STREQ(frames[1], "unit.b");
            EXPECT_STREQ(obs::health_detail::innermost_span(), "unit.b");
            // A caller with a smaller buffer gets a clamped prefix.
            const char* one[1] = {};
            EXPECT_EQ(obs::health_detail::read_own_span_stack(one, 1), 1);
            EXPECT_STREQ(one[0], "unit.a");
        }
        EXPECT_EQ(obs::health_detail::read_own_span_stack(frames, 8), 1);
    }
    EXPECT_EQ(obs::health_detail::read_own_span_stack(frames, 8), 0);
    obs::set_span_tracking(prev);
}

TEST(ProfTest, QuerySamplesRollUpByTraceId) {
    if (!obs::profiler_supported()) {
        GTEST_SKIP() << "no per-thread CPU timers on this platform";
    }
    obs::prof_register_thread("main");
    ASSERT_TRUE(obs::start_profiler(fast_options()));
    obs::reset_profiler();

    const obs::QueryContext ctx = obs::query_begin(3);
    {
        obs::QueryScope scope(ctx);
        obs::SpanScope span("test.query_burn", "test");
        burn_cpu(80);
    }
    obs::stop_profiler();

    const auto queries = obs::prof_query_counts();
    std::uint64_t hits = 0;
    for (const obs::ProfQueryCount& q : queries) {
        if (q.trace_id == ctx.trace_id) {
            hits = q.samples;
        }
    }
    EXPECT_GE(hits, 1u);
}

TEST(ProfTest, PoolWorkerSamplesCarryOriginSpan) {
    if (!obs::profiler_supported()) {
        GTEST_SKIP() << "no per-thread CPU timers on this platform";
    }
    obs::prof_register_thread("main");
    ASSERT_TRUE(obs::start_profiler(fast_options()));
    obs::reset_profiler();

    // Explicit worker count: default_concurrency() is 0 on a single-core
    // box, which would run everything inline on the main thread and test
    // nothing about origin propagation.
    ThreadPool pool(2);
    {
        obs::SpanScope origin("test.pool_origin", "test");
        TaskGroup group(pool);
        for (int i = 0; i < 4; ++i) {
            group.run([] { burn_cpu(40); });
        }
        group.wait();
    }
    obs::stop_profiler();

    // Samples taken on pool workers (and on main while work-helping in
    // wait()) must attribute to the enqueuing span.
    const auto stacks = obs::prof_stack_counts();
    EXPECT_GE(samples_for_stack(stacks, "test.pool_origin"), 1u);
}

TEST(ProfTest, ProfileJsonMatchesSchemaAndFeedsDiff) {
    if (!obs::profiler_supported()) {
        GTEST_SKIP() << "no per-thread CPU timers on this platform";
    }
    obs::prof_register_thread("main");
    ASSERT_TRUE(obs::start_profiler(fast_options()));
    obs::reset_profiler();
    {
        obs::SpanScope span("test.json_burn", "test");
        burn_cpu(60);
    }
    obs::stop_profiler();

    const Value doc = obs::json::parse(obs::profile_json());
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->string(), "bat-prof-v1");
    EXPECT_EQ(doc.find("pid")->number(), static_cast<double>(::getpid()));
    EXPECT_DOUBLE_EQ(doc.find("hz")->number(), 1000.0);
    ASSERT_NE(doc.find("stacks"), nullptr);
    ASSERT_TRUE(doc.find("stacks")->is_array());
    EXPECT_GE(doc.find("samples")->number(), 1.0);

    bool found = false;
    for (const Value& s : doc.find("stacks")->array()) {
        std::string joined;
        for (const Value& f : s.find("frames")->array()) {
            if (!joined.empty()) {
                joined += ';';
            }
            joined += f.string();
        }
        if (joined.find("test.json_burn") != std::string::npos) {
            found = true;
            EXPECT_GE(s.find("samples")->number(), 1.0);
        }
    }
    EXPECT_TRUE(found);

    // A profile diffed against itself is all-zero deltas; against a doc
    // whose weight moved to one stack, that stack is flagged.
    const obs::ProfDiff self = obs::prof_diff(doc, doc, 5.0);
    EXPECT_TRUE(self.flagged.empty());

    const Value before = obs::json::parse(
        "{\"schema\":\"bat-prof-v1\",\"attributed\":100,\"stacks\":["
        "{\"rank\":0,\"frames\":[\"a\"],\"samples\":50},"
        "{\"rank\":0,\"frames\":[\"b\"],\"samples\":50}]}");
    const Value after = obs::json::parse(
        "{\"schema\":\"bat-prof-v1\",\"attributed\":100,\"stacks\":["
        "{\"rank\":0,\"frames\":[\"a\"],\"samples\":20},"
        "{\"rank\":1,\"frames\":[\"b\"],\"samples\":30},"
        "{\"rank\":0,\"frames\":[\"b\"],\"samples\":50}]}");
    const obs::ProfDiff diff = obs::prof_diff(before, after, 5.0);
    EXPECT_EQ(diff.before_samples, 100u);
    EXPECT_EQ(diff.after_samples, 100u);
    ASSERT_EQ(diff.flagged.size(), 2u);  // a: -30 pts, b (rank-merged): +30 pts
    EXPECT_EQ(diff.entries.front().stack, diff.flagged.front().stack);
}

TEST(ProfTest, FlightRecordIncludesProfProviderWhileRunning) {
    if (!obs::profiler_supported()) {
        GTEST_SKIP() << "no per-thread CPU timers on this platform";
    }
    obs::prof_register_thread("main");
    ASSERT_TRUE(obs::start_profiler(fast_options()));
    {
        obs::SpanScope span("test.flight_burn", "test");
        burn_cpu(30);
    }
    const Value record = obs::json::parse(obs::flight_record_json("unit-test"));
    bool found = false;
    const Value* subsystems = record.find("subsystems");
    ASSERT_NE(subsystems, nullptr);
    for (const Value& sub : subsystems->array()) {
        if (sub.find("name") != nullptr && sub.find("name")->string() == "prof") {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    obs::stop_profiler();

    // After stop, the provider is gone from fresh flight records.
    const Value after = obs::json::parse(obs::flight_record_json("unit-test"));
    for (const Value& sub : after.find("subsystems")->array()) {
        if (sub.find("name") != nullptr) {
            EXPECT_NE(sub.find("name")->string(), "prof");
        }
    }
}

TEST(ProfTest, ResetDropsAggregatesButKeepsRunning) {
    if (!obs::profiler_supported()) {
        GTEST_SKIP() << "no per-thread CPU timers on this platform";
    }
    obs::prof_register_thread("main");
    ASSERT_TRUE(obs::start_profiler(fast_options()));
    {
        obs::SpanScope span("test.reset_burn", "test");
        burn_cpu(50);
    }
    obs::reset_profiler();
    EXPECT_TRUE(obs::profiler_running());
    obs::stop_profiler();
    // Only whatever trickled in between reset and stop remains — strictly
    // fewer than the 50 ms burn produced, typically zero.
    EXPECT_LT(obs::prof_totals().samples, 10u);
}

TEST(ProfTest, StopKeepsSpanTrackingForArmedHealthLayer) {
    if (!obs::profiler_supported()) {
        GTEST_SKIP() << "no per-thread CPU timers on this platform";
    }
    // Symmetric with stop_watchdog: whichever obs layer stops last turns
    // span tracking off, and neither turns it off under the other.
    obs::WatchdogOptions dog;
    dog.interval = std::chrono::seconds(60);
    obs::start_watchdog(dog);
    ASSERT_TRUE(obs::start_profiler(fast_options()));
    EXPECT_TRUE(obs::span_tracking_enabled());

    obs::stop_watchdog();
    EXPECT_TRUE(obs::span_tracking_enabled()) << "profiler still sampling";
    obs::stop_profiler();
    EXPECT_FALSE(obs::span_tracking_enabled());
}

// Child body for the env re-exec test below: registers with the obs layer
// (which triggers BAT_PROF_HZ arming in an env-armed process) and burns
// CPU inside a span. Trivial when run normally — no profiler is started.
TEST(ProfTest, RegisterAndBurn) {
    obs::prof_register_thread("main");
    obs::SpanScope span("test.env_burn", "test");
    burn_cpu(100);
}

TEST(ProfEnvTest, EnvArmedProcessWritesProfileWithPidExpansion) {
    if (!obs::profiler_supported()) {
        GTEST_SKIP() << "no per-thread CPU timers on this platform";
    }
    // Re-exec this binary with BAT_PROF_HZ + BAT_PROF_FILE armed: a fresh
    // process must start sampling at first obs registration, run a
    // CPU-burning test, and write a valid bat-prof-v1 document at exit with
    // "%p" expanded to the child's pid.
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    ASSERT_GT(n, 0);
    exe[n] = '\0';

    const bat::testing::TempDir dir;
    const std::string tmpl = (dir.path() / "prof_%p.json").string();
    std::ostringstream cmd;
    cmd << "BAT_PROF_HZ=997 BAT_PROF_FILE='" << tmpl << "' timeout 60 '" << exe
        << "' --gtest_filter=ProfTest.RegisterAndBurn"
        << " >/dev/null 2>&1";
    const int status = std::system(cmd.str().c_str());
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    // One prof_<pid>.json from the child (we don't know its pid; glob).
    std::vector<std::filesystem::path> written;
    for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
        written.push_back(entry.path());
    }
    ASSERT_EQ(written.size(), 1u);
    EXPECT_EQ(written.front().filename().string().find("prof_"), 0u);
    EXPECT_EQ(written.front().filename().string().find("%p"), std::string::npos);

    std::ifstream in(written.front());
    std::stringstream buf;
    buf << in.rdbuf();
    const Value doc = obs::json::parse(buf.str());
    EXPECT_EQ(doc.find("schema")->string(), "bat-prof-v1");
    EXPECT_DOUBLE_EQ(doc.find("hz")->number(), 997.0);
    EXPECT_GE(doc.find("samples")->number(), 1.0);
}
