// Tests for the quantized BAT storage (§VII-A future-work extension):
// bounded-error round trips, size reduction, structural preservation, and
// query correctness on the reconstruction.

#include <gtest/gtest.h>

#include "core/bat_compress.hpp"
#include "core/bat_file.hpp"
#include "core/bat_query.hpp"
#include "test_helpers.hpp"
#include "workloads/mixtures.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kUnit({0, 0, 0}, {1, 1, 1});

BatData make_bat(std::size_t n, std::size_t nattrs, std::uint64_t seed) {
    return build_bat(make_uniform_particles(kUnit, n, nattrs, seed), BatConfig{});
}

TEST(BatCompressTest, RoundTripWithinErrorBounds) {
    const BatData original = make_bat(20'000, 3, 1);
    const BatData back = decompress_bat(compress_bat(original));
    ASSERT_EQ(back.particles.count(), original.particles.count());
    const QuantizationError bounds = quantization_error_bounds(original);
    for (std::size_t i = 0; i < original.particles.count(); ++i) {
        const Vec3 a = original.particles.position(i);
        const Vec3 b = back.particles.position(i);
        for (int axis = 0; axis < 3; ++axis) {
            EXPECT_LE(std::abs(a[axis] - b[axis]),
                      bounds.max_position_error[axis] * 1.01f)
                << "particle " << i << " axis " << axis;
        }
        for (std::size_t attr = 0; attr < 3; ++attr) {
            EXPECT_LE(std::abs(original.particles.attr(attr)[i] -
                               back.particles.attr(attr)[i]),
                      bounds.max_attr_error[attr] * 1.01)
                << "particle " << i << " attr " << attr;
        }
    }
}

TEST(BatCompressTest, StructurePreservedExactly) {
    const BatData original = make_bat(30'000, 2, 2);
    const BatData back = decompress_bat(compress_bat(original));
    ASSERT_EQ(back.treelets.size(), original.treelets.size());
    for (std::size_t t = 0; t < original.treelets.size(); ++t) {
        const Treelet& a = original.treelets[t];
        const Treelet& b = back.treelets[t];
        EXPECT_EQ(b.first_particle, a.first_particle);
        EXPECT_EQ(b.num_particles, a.num_particles);
        EXPECT_EQ(b.max_depth, a.max_depth);
        ASSERT_EQ(b.nodes.size(), a.nodes.size());
        for (std::size_t n = 0; n < a.nodes.size(); ++n) {
            EXPECT_EQ(b.nodes[n].start, a.nodes[n].start);
            EXPECT_EQ(b.nodes[n].count, a.nodes[n].count);
            EXPECT_EQ(b.nodes[n].own_count, a.nodes[n].own_count);
            EXPECT_EQ(b.nodes[n].right_child, a.nodes[n].right_child);
        }
    }
    EXPECT_EQ(back.shallow_nodes.size(), original.shallow_nodes.size());
    EXPECT_EQ(back.attr_ranges, original.attr_ranges);
    EXPECT_EQ(back.config.lod_per_inner, original.config.lod_per_inner);
}

TEST(BatCompressTest, SubstantiallySmallerThanUncompressed) {
    // 14-attribute schema (the paper's weak-scaling payload): quantization
    // shrinks 12 + 112 bytes/particle to 6 + 28.
    const BatData bat = make_bat(50'000, 14, 3);
    const std::size_t plain = serialize_bat(bat).size();
    const std::size_t compressed = compress_bat(bat).size();
    EXPECT_LT(compressed, plain / 3);
}

TEST(BatCompressTest, QueriesOnReconstructionAreConsistent) {
    const auto blobs = make_random_blobs(kUnit, 4, 4);
    ParticleSet particles = make_mixture_particles(kUnit, blobs, 25'000, 2, 5);
    const BatData original = build_bat(std::move(particles), BatConfig{});
    const BatData back = decompress_bat(compress_bat(original));

    // Progressive windows still partition the reconstruction.
    std::uint64_t total = 0;
    for (int step = 0; step < 4; ++step) {
        BatQuery query;
        query.quality_lo = static_cast<float>(step) / 4.f;
        query.quality_hi = static_cast<float>(step + 1) / 4.f;
        total += query_bat(back, query, [](Vec3, std::span<const double>) {});
    }
    EXPECT_EQ(total, original.particles.count());

    // Attribute filtering on the reconstruction is exact w.r.t. decoded
    // values: brute-force over the reconstruction must match query_bat.
    const auto [lo, hi] = back.attr_ranges[0];
    const double qlo = lo + 0.4 * (hi - lo);
    const double qhi = lo + 0.6 * (hi - lo);
    BatQuery query;
    query.attr_filters.push_back({0, qlo, qhi});
    const std::uint64_t got =
        query_bat(back, query, [](Vec3, std::span<const double>) {});
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < back.particles.count(); ++i) {
        const double v = back.particles.attr(0)[i];
        expected += v >= qlo && v <= qhi;
    }
    EXPECT_EQ(got, expected);
}

TEST(BatCompressTest, FileRoundTrip) {
    testing::TempDir dir;
    const BatData original = make_bat(5'000, 2, 6);
    const auto path = dir.path() / "data.batz";
    write_compressed_bat(path, original);
    const BatData back = read_compressed_bat(path);
    EXPECT_EQ(back.particles.count(), original.particles.count());
}

TEST(BatCompressTest, RejectsGarbage) {
    std::vector<std::byte> junk(64, std::byte{0x42});
    EXPECT_THROW(decompress_bat(junk), Error);
}

TEST(BatCompressTest, EmptyBat) {
    ParticleSet empty(uniform_attr_names(2));
    const BatData original = build_bat(std::move(empty), BatConfig{});
    const BatData back = decompress_bat(compress_bat(original));
    EXPECT_EQ(back.particles.count(), 0u);
    EXPECT_EQ(back.num_attrs(), 2u);
}

TEST(BatCompressTest, ErrorBoundsShrinkWithTreeletSize) {
    // Quantization error is relative to treelet bounds, so clustered data
    // (small treelets) reconstructs positions more accurately than one
    // giant treelet would.
    const BatData bat = make_bat(40'000, 1, 7);
    const QuantizationError err = quantization_error_bounds(bat);
    // Treelet extents are well below the domain extent.
    EXPECT_LT(err.max_position_error.x, 1.f / 65535.f * 1.01f);
}

}  // namespace
}  // namespace bat
