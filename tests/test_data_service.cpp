// Tests for the distributed in situ DataService (paper §IV-B): collective
// query rounds with spatial/attribute/progressive filters, ranks that sit
// a round out, and multiple consecutive rounds.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "io/data_service.hpp"
#include "io/writer.hpp"
#include "test_helpers.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});

struct Written {
    testing::TempDir dir;
    ParticleSet global;
    std::filesystem::path meta_path;

    explicit Written(std::size_t n = 16'000) {
        global = make_uniform_particles(kDomain, n, 2, 13);
        const GridDecomp decomp = grid_decomp_3d(8, kDomain);
        const auto per_rank = partition_particles(global, decomp);
        std::vector<Box> bounds;
        for (int r = 0; r < 8; ++r) {
            bounds.push_back(decomp.rank_box(r));
        }
        WriterConfig config;
        config.tree.target_file_size = 32 << 10;
        config.directory = dir.path();
        config.basename = "svc";
        meta_path = write_particles_serial(per_rank, bounds, config).metadata_path;
    }
};

TEST(DataServiceTest, EveryRankQueriesItsRegion) {
    Written w;
    const GridDecomp decomp = grid_decomp_3d(6, kDomain);
    std::atomic<std::uint64_t> total{0};
    vmpi::Runtime::run(6, [&](vmpi::Comm& comm) {
        DataService service(comm, w.meta_path);
        BatQuery query;
        query.box = decomp.rank_read_box(comm.rank());
        query.inclusive_upper = false;
        const ParticleSet mine = service.query_round(query);
        total.fetch_add(mine.count());
        for (std::size_t i = 0; i < mine.count(); ++i) {
            EXPECT_TRUE(decomp.rank_read_box(comm.rank()).contains(mine.position(i)));
        }
    });
    EXPECT_EQ(total.load(), w.global.count());
}

TEST(DataServiceTest, SomeRanksSitOut) {
    Written w;
    std::atomic<std::uint64_t> total{0};
    vmpi::Runtime::run(5, [&](vmpi::Comm& comm) {
        DataService service(comm, w.meta_path);
        if (comm.rank() == 2) {
            BatQuery query;  // whole domain
            total.fetch_add(service.query_round(query).count());
        } else {
            service.query_round(std::nullopt);
        }
    });
    EXPECT_EQ(total.load(), w.global.count());
}

TEST(DataServiceTest, AttributeFilteredRound) {
    Written w;
    const auto [lo, hi] = w.global.attr_range(0);
    const double qlo = lo + 0.7 * (hi - lo);
    const std::size_t expected =
        testing::brute_force_query(w.global, Box({-9, -9, -9}, {9, 9, 9}), true, 0, qlo, hi)
            .size();
    std::atomic<std::uint64_t> total{0};
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        DataService service(comm, w.meta_path);
        if (comm.rank() == 0) {
            BatQuery query;
            query.attr_filters.push_back({0, qlo, hi});
            const ParticleSet got = service.query_round(query);
            for (std::size_t i = 0; i < got.count(); ++i) {
                EXPECT_GE(got.attr(0)[i], qlo);
            }
            total.fetch_add(got.count());
        } else {
            service.query_round(std::nullopt);
        }
    });
    EXPECT_EQ(total.load(), expected);
}

TEST(DataServiceTest, ProgressiveRoundsArePartition) {
    Written w;
    std::atomic<std::uint64_t> total{0};
    vmpi::Runtime::run(3, [&](vmpi::Comm& comm) {
        DataService service(comm, w.meta_path);
        // Rank 0 streams the data progressively over 4 rounds; the others
        // serve (and sit out as clients).
        for (int round = 0; round < 4; ++round) {
            if (comm.rank() == 0) {
                BatQuery query;
                query.quality_lo = static_cast<float>(round) / 4.f;
                query.quality_hi = static_cast<float>(round + 1) / 4.f;
                total.fetch_add(service.query_round(query).count());
            } else {
                service.query_round(std::nullopt);
            }
        }
    });
    EXPECT_EQ(total.load(), w.global.count());
}

TEST(DataServiceTest, ConcurrentClientsMultipleRounds) {
    Written w;
    std::mutex mutex;
    ParticleSet collected(w.global.attr_names());
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        DataService service(comm, w.meta_path);
        // Round 1: each rank queries one quadrant slab.
        BatQuery q1;
        const float x0 = 0.5f * static_cast<float>(comm.rank());
        q1.box = Box({x0, 0, 0}, {x0 + 0.5f, 2, 2});
        q1.inclusive_upper = comm.rank() == 3;
        const ParticleSet part = service.query_round(q1);
        {
            std::lock_guard<std::mutex> lock(mutex);
            collected.append(part);
        }
        // Round 2: everyone asks for a coarse preview.
        BatQuery q2;
        q2.quality_hi = 0.05f;
        const ParticleSet preview = service.query_round(q2);
        EXPECT_GT(preview.count(), 0u);
        EXPECT_LT(preview.count(), w.global.count());
    });
    EXPECT_EQ(testing::particle_keys(collected), testing::particle_keys(w.global));
}

TEST(DataServiceTest, ServedLeavesCoverAllLeaves) {
    Written w;
    std::mutex mutex;
    std::vector<int> served;
    vmpi::Runtime::run(3, [&](vmpi::Comm& comm) {
        DataService service(comm, w.meta_path);
        {
            std::lock_guard<std::mutex> lock(mutex);
            served.insert(served.end(), service.served_leaves().begin(),
                          service.served_leaves().end());
        }
        service.query_round(std::nullopt);
    });
    std::sort(served.begin(), served.end());
    const Metadata meta = Metadata::load(w.meta_path);
    ASSERT_EQ(served.size(), meta.leaves.size());
    for (std::size_t i = 0; i < served.size(); ++i) {
        EXPECT_EQ(served[i], static_cast<int>(i));
    }
}

}  // namespace
}  // namespace bat
