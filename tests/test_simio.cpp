// Tests for the performance-model substrate: conservation and monotonicity
// properties of the network/filesystem models, and the qualitative shapes
// the paper's evaluation depends on (file-per-process metadata collapse,
// shared-file flattening, adaptive beating AUG on imbalanced input).

#include <gtest/gtest.h>

#include "simio/calibrate.hpp"
#include "simio/filesystem.hpp"
#include "simio/machine.hpp"
#include "simio/network.hpp"
#include "simio/pipeline_model.hpp"
#include "util/rng.hpp"
#include "workloads/decomposition.hpp"

namespace bat::simio {
namespace {

std::vector<RankInfo> uniform_ranks(int nranks, std::uint64_t particles) {
    const GridDecomp d = grid_decomp_3d(nranks, Box({0, 0, 0}, {1, 1, 1}));
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(nranks), particles);
    return make_rank_infos(d, counts);
}

std::vector<RankInfo> skewed_ranks(int nranks, std::uint64_t seed) {
    const GridDecomp d = grid_decomp_3d(nranks, Box({0, 0, 0}, {1, 1, 1}));
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(nranks), 0);
    Pcg32 rng(seed);
    for (auto& c : counts) {
        // 20% of ranks hold ~90% of particles.
        c = rng.next_bounded(10) < 2 ? 100'000 + rng.next_bounded(100'000)
                                     : rng.next_bounded(5'000);
    }
    return make_rank_infos(d, counts);
}

TwoPhaseParams params_for(const MachineConfig& m, AggStrategy strategy,
                          std::uint64_t target) {
    TwoPhaseParams p;
    p.machine = m;
    p.strategy = strategy;
    p.tree.target_file_size = target;
    p.tree.bytes_per_particle = 12 + 14 * 8;
    return p;
}

// ---- network model ----------------------------------------------------------

TEST(NetworkModelTest, NoTransfersNoTime) {
    const MachineConfig m = stampede2_like();
    const NetworkPhase phase = model_transfers(m, 96, {});
    EXPECT_EQ(phase.seconds, 0.0);
}

TEST(NetworkModelTest, SelfTransferIsFree) {
    const MachineConfig m = stampede2_like();
    const std::vector<Transfer> transfers{{3, 3, 1 << 30}};
    const NetworkPhase phase = model_transfers(m, 96, transfers);
    EXPECT_EQ(phase.cross_node_bytes, 0u);
    EXPECT_EQ(phase.seconds, 0.0);
}

TEST(NetworkModelTest, IntraNodeCheaperThanCross) {
    const MachineConfig m = stampede2_like();
    // Ranks 0 and 1 share node 0; rank 96 is on node 2.
    const std::vector<Transfer> intra{{0, 1, 1 << 30}};
    const std::vector<Transfer> cross{{0, 96, 1 << 30}};
    EXPECT_LT(model_transfers(m, 128, intra).seconds,
              model_transfers(m, 128, cross).seconds);
}

TEST(NetworkModelTest, IncastSlowerThanSpread) {
    const MachineConfig m = stampede2_like();
    // 64 MB from each of 10 nodes into ONE aggregator node vs 10 aggregators.
    std::vector<Transfer> incast;
    std::vector<Transfer> spread;
    for (int i = 1; i <= 10; ++i) {
        incast.push_back({i * m.ranks_per_node, 0, 64 << 20});
        spread.push_back({i * m.ranks_per_node, (i - 1) * m.ranks_per_node + 1, 64 << 20});
    }
    EXPECT_GT(model_transfers(m, 11 * m.ranks_per_node, incast).seconds,
              1.5 * model_transfers(m, 11 * m.ranks_per_node, spread).seconds);
}

TEST(NetworkModelTest, TimeScalesWithBytes) {
    const MachineConfig m = summit_like();
    const std::vector<Transfer> small{{0, 100, 1 << 20}};
    const std::vector<Transfer> large{{0, 100, 1 << 28}};
    EXPECT_LT(model_transfers(m, 128, small).seconds,
              model_transfers(m, 128, large).seconds);
}

// ---- filesystem model ---------------------------------------------------------

TEST(FsModelTest, MetadataCostGrowsSuperlinearly) {
    const MachineConfig m = stampede2_like();
    const double t1k = model_metadata_ops(m, 1'000, true);
    const double t10k = model_metadata_ops(m, 10'000, true);
    EXPECT_GT(t10k, 10.0 * t1k);  // directory contention kicks in
}

TEST(FsModelTest, FewerLargerFilesBeatManySmall) {
    const MachineConfig m = stampede2_like();
    // Same total bytes: 10k files of 8 MB vs 640 files of 128 MB.
    std::vector<FileWriteLoad> many;
    std::vector<FileWriteLoad> few;
    for (int i = 0; i < 10'000; ++i) {
        many.push_back({8 << 20, i % 1000});
    }
    for (int i = 0; i < 640; ++i) {
        few.push_back({128 << 20, i});
    }
    EXPECT_GT(model_file_writes(m, many).seconds, model_file_writes(m, few).seconds);
}

TEST(FsModelTest, LustreStripingSpreadsLoad) {
    // Raise the per-client cap so the OST term dominates and the striping
    // effect is visible.
    MachineConfig narrow = stampede2_like();
    narrow.stripe_count = 1;
    narrow.client_bw = 1e12;
    MachineConfig wide = stampede2_like();
    wide.stripe_count = 32;
    wide.client_bw = 1e12;
    const std::vector<FileWriteLoad> one_file{{8ull << 30, 0}};
    EXPECT_GT(model_file_writes(narrow, one_file).data_seconds,
              model_file_writes(wide, one_file).data_seconds);
}

TEST(FsModelTest, SharedFileFlattensWithWriters) {
    const MachineConfig m = stampede2_like();
    const std::uint64_t per_writer = 4 << 20;
    // Effective bandwidth (total/time) should stop growing at large P.
    const auto bw = [&](int p) {
        const FsPhase phase =
            model_shared_write(m, p, per_writer * static_cast<std::uint64_t>(p),
                               per_writer, false);
        return static_cast<double>(per_writer) * p / phase.seconds;
    };
    EXPECT_LT(bw(24'000), 1.3 * bw(1'500));
}

TEST(FsModelTest, Hdf5FlavorSlower) {
    const MachineConfig m = summit_like();
    const FsPhase plain = model_shared_write(m, 4096, 16ull << 30, 4 << 20, false);
    const FsPhase hdf5 = model_shared_write(m, 4096, 16ull << 30, 4 << 20, true);
    EXPECT_GT(hdf5.seconds, plain.seconds);
}

// ---- pipeline model -----------------------------------------------------------

TEST(PipelineModelTest, WritePhasesPresentAndPositive) {
    const auto ranks = uniform_ranks(768, 32'768);
    const SimResult r = simulate_write(ranks, params_for(stampede2_like(),
                                                         AggStrategy::adaptive, 64 << 20));
    EXPECT_GT(r.seconds, 0.0);
    for (const char* name :
         {"gather", "tree_build", "scatter", "transfer", "bat_build", "file_write",
          "metadata"}) {
        EXPECT_GE(r.phase_seconds(name), 0.0) << name;
    }
    EXPECT_GT(r.phase_seconds("file_write"), 0.0);
    EXPECT_GT(r.total_bytes, 0u);
    EXPECT_GT(r.files.num_files, 0);
}

TEST(PipelineModelTest, FppDegradesAtScaleOnStampede) {
    // Paper Fig 5a: file per process degrades by ~1536 ranks on Stampede2.
    const MachineConfig m = stampede2_like();
    const auto bw = [&](int p) {
        return simulate_ior_fpp_write(uniform_ranks(p, 32'768), m).gb_per_s();
    };
    const double peak = std::max({bw(384), bw(768), bw(1536)});
    EXPECT_LT(bw(24'576), 0.7 * peak) << "fpp must collapse at 24k ranks";
}

TEST(PipelineModelTest, TwoPhaseLargeTargetScalesPastFpp) {
    // Paper Fig 5: at scale our two-phase approach with a large target
    // outperforms fpp and shared-file.
    for (const MachineConfig& m : {stampede2_like(), summit_like()}) {
        const int p = 24'576;
        const auto ranks = uniform_ranks(p, 32'768);
        const double ours =
            simulate_write(ranks, params_for(m, AggStrategy::adaptive, 256 << 20))
                .gb_per_s();
        const double fpp = simulate_ior_fpp_write(ranks, m).gb_per_s();
        const double shared = simulate_ior_shared_write(ranks, m, false).gb_per_s();
        EXPECT_GT(ours, fpp) << m.name;
        EXPECT_GT(ours, shared) << m.name;
    }
}

TEST(PipelineModelTest, SmallTargetDegradesLikeFpp) {
    // Paper: "We observe similar degradation in our method when using small
    // target sizes".
    const MachineConfig m = stampede2_like();
    const auto ranks = uniform_ranks(24'576, 32'768);
    const double small =
        simulate_write(ranks, params_for(m, AggStrategy::adaptive, 8 << 20)).gb_per_s();
    const double large =
        simulate_write(ranks, params_for(m, AggStrategy::adaptive, 256 << 20)).gb_per_s();
    EXPECT_GT(large, 1.5 * small);
}

TEST(PipelineModelTest, AdaptiveBeatsAugOnSkewedData) {
    // The paper's headline (Fig 9/11): up to 2.5x faster writes on
    // nonuniform distributions.
    const MachineConfig m = stampede2_like();
    const auto ranks = skewed_ranks(1536, 99);
    const double adaptive =
        simulate_write(ranks, params_for(m, AggStrategy::adaptive, 8 << 20)).gb_per_s();
    const double aug =
        simulate_write(ranks, params_for(m, AggStrategy::aug, 8 << 20)).gb_per_s();
    EXPECT_GT(adaptive, aug);
}

TEST(PipelineModelTest, AdaptiveMatchesAugOnUniformData) {
    // On uniform data both should be comparable (paper Fig 11a: fpp modes
    // similar; AUG is fine when its density assumption holds).
    const MachineConfig m = stampede2_like();
    const auto ranks = uniform_ranks(1536, 32'768);
    const double adaptive =
        simulate_write(ranks, params_for(m, AggStrategy::adaptive, 64 << 20)).gb_per_s();
    const double aug =
        simulate_write(ranks, params_for(m, AggStrategy::aug, 64 << 20)).gb_per_s();
    EXPECT_GT(adaptive, 0.5 * aug);
    EXPECT_LT(adaptive, 2.0 * aug);
}

TEST(PipelineModelTest, AdaptiveFileSizesTighterOnSkewedData) {
    // Paper §VI-A2 file statistics: adaptive yields smaller max and stddev.
    const MachineConfig m = stampede2_like();
    const auto ranks = skewed_ranks(1536, 7);
    const SimResult adaptive =
        simulate_write(ranks, params_for(m, AggStrategy::adaptive, 8 << 20));
    const SimResult aug = simulate_write(ranks, params_for(m, AggStrategy::aug, 8 << 20));
    EXPECT_LT(adaptive.files.max_bytes, aug.files.max_bytes);
    EXPECT_LT(adaptive.files.std_bytes, aug.files.std_bytes);
}

TEST(PipelineModelTest, ReadMirrorsWrite) {
    const auto ranks = uniform_ranks(768, 32'768);
    const SimResult r =
        simulate_read(ranks, params_for(summit_like(), AggStrategy::adaptive, 64 << 20));
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.phase_seconds("file_read"), 0.0);
    EXPECT_GT(r.phase_seconds("transfer"), 0.0);
    EXPECT_EQ(r.total_bytes, workload_bytes(ranks, 12 + 14 * 8));
}

TEST(PipelineModelTest, DeterministicResults) {
    const auto ranks = skewed_ranks(384, 5);
    const TwoPhaseParams p = params_for(stampede2_like(), AggStrategy::adaptive, 8 << 20);
    const SimResult a = simulate_write(ranks, p);
    const SimResult b = simulate_write(ranks, p);
    // tree_build is measured wall time (varies); everything else is modeled
    // and must match exactly.
    EXPECT_EQ(a.files.num_files, b.files.num_files);
    EXPECT_DOUBLE_EQ(a.phase_seconds("transfer"), b.phase_seconds("transfer"));
    EXPECT_DOUBLE_EQ(a.phase_seconds("file_write"), b.phase_seconds("file_write"));
}

TEST(CalibrateTest, ProducesSaneNumbers) {
    const Calibration cal = calibrate_bat_build(50'000, 7, 3);
    EXPECT_GT(cal.bat_build_bps, 1e6);    // > 1 MB/s on any machine
    EXPECT_LT(cal.bat_build_bps, 1e12);   // < 1 TB/s
    EXPECT_GT(cal.layout_overhead, 0.0);
    EXPECT_LT(cal.layout_overhead, 0.2);
}

}  // namespace
}  // namespace bat::simio
