#pragma once
// Shared test utilities: a scoped temporary directory and brute-force
// reference implementations the library's accelerated paths are checked
// against.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "core/particles.hpp"
#include "util/vec3.hpp"

namespace bat::testing {

/// Unique temp directory removed on destruction.
class TempDir {
public:
    explicit TempDir(const std::string& prefix = "bat_test") {
        static std::atomic<int> counter{0};
        path_ = std::filesystem::temp_directory_path() /
                (prefix + "_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1)));
        std::filesystem::create_directories(path_);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    const std::filesystem::path& path() const { return path_; }

private:
    std::filesystem::path path_;
};

/// Brute-force reference: indices of particles inside `box` (and matching
/// an optional attribute range).
inline std::vector<std::size_t> brute_force_query(const ParticleSet& set, const Box& box,
                                                  bool inclusive_upper = true, int attr = -1,
                                                  double lo = 0, double hi = 0) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < set.count(); ++i) {
        const Vec3 p = set.position(i);
        bool inside;
        if (inclusive_upper) {
            inside = box.contains(p);
        } else {
            inside = p.x >= box.lower.x && p.x < box.upper.x && p.y >= box.lower.y &&
                     p.y < box.upper.y && p.z >= box.lower.z && p.z < box.upper.z;
        }
        if (!inside) {
            continue;
        }
        if (attr >= 0) {
            const double v = set.attr(static_cast<std::size_t>(attr))[i];
            if (v < lo || v > hi) {
                continue;
            }
        }
        out.push_back(i);
    }
    return out;
}

/// Sort key for comparing particle populations irrespective of order.
struct ParticleKey {
    float x, y, z;
    std::vector<double> attrs;

    bool operator<(const ParticleKey& o) const {
        if (x != o.x) return x < o.x;
        if (y != o.y) return y < o.y;
        if (z != o.z) return z < o.z;
        return attrs < o.attrs;
    }
    bool operator==(const ParticleKey& o) const {
        return x == o.x && y == o.y && z == o.z && attrs == o.attrs;
    }
};

inline std::vector<ParticleKey> particle_keys(const ParticleSet& set) {
    std::vector<ParticleKey> keys(set.count());
    for (std::size_t i = 0; i < set.count(); ++i) {
        const Vec3 p = set.position(i);
        keys[i].x = p.x;
        keys[i].y = p.y;
        keys[i].z = p.z;
        keys[i].attrs.resize(set.num_attrs());
        for (std::size_t a = 0; a < set.num_attrs(); ++a) {
            keys[i].attrs[a] = set.attr(a)[i];
        }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

}  // namespace bat::testing
