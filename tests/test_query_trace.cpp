// Tests for per-query tracing and cost attribution (obs/query_trace.hpp):
// histogram percentile accuracy against exact quantiles, context propagation
// through the coalesced read protocol and pool work-helping (every served
// leaf attributed exactly once), accounting identities against the global
// metrics counters, JSONL schema round-trips, and record sampling.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "io/data_service.hpp"
#include "io/reader.hpp"
#include "io/writer.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/query_trace.hpp"
#include "test_helpers.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});

struct Written {
    testing::TempDir dir;
    ParticleSet global;
    std::filesystem::path meta_path;

    explicit Written(std::size_t n = 16'000) {
        global = make_uniform_particles(kDomain, n, 2, 13);
        const GridDecomp decomp = grid_decomp_3d(8, kDomain);
        const auto per_rank = partition_particles(global, decomp);
        std::vector<Box> bounds;
        for (int r = 0; r < 8; ++r) {
            bounds.push_back(decomp.rank_box(r));
        }
        WriterConfig config;
        config.tree.target_file_size = 32 << 10;
        config.directory = dir.path();
        config.basename = "qtrace";
        meta_path = write_particles_serial(per_rank, bounds, config).metadata_path;
    }
};

/// RAII arming of the query-trace rings around one test body.
struct TraceArmed {
    TraceArmed() {
        obs::reset_query_trace();
        obs::set_query_sample_every(1);
        obs::set_query_trace_enabled(true);
    }
    ~TraceArmed() {
        obs::set_query_trace_enabled(false);
        obs::set_query_sample_every(1);
        obs::reset_query_trace();
    }
};

std::uint64_t counter_value(const char* name) {
    return obs::MetricsRegistry::global().counter(name).value();
}

std::uint64_t histogram_count(const std::string& name) {
    for (const auto& h : obs::MetricsRegistry::global().histogram_snapshots()) {
        if (h.name == name) {
            return h.count;
        }
    }
    return 0;
}

/// Exact nearest-rank quantile of a sorted sample.
double exact_quantile(const std::vector<double>& sorted, double q) {
    const auto n = static_cast<double>(sorted.size());
    const auto rank = static_cast<std::size_t>(std::ceil(q * n));
    return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

// ---- histogram percentiles -------------------------------------------------

TEST(QueryTraceTest, PercentileMatchesExactQuantiles) {
    obs::Histogram hist(obs::MetricsRegistry::hdr_us_bounds());
    // Deterministic log-uniform samples spanning 1us..1s — five orders of
    // magnitude, so every octave band of the HDR bounds gets exercised.
    std::uint64_t lcg = 0x243F6A8885A308D3ull;
    std::vector<double> values;
    for (int i = 0; i < 20'000; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const double u = static_cast<double>(lcg >> 11) /
                         static_cast<double>(1ull << 53);
        const double v = std::exp(u * std::log(1e6));
        values.push_back(v);
        hist.record(v);
    }
    std::sort(values.begin(), values.end());
    // The HDR bounds split each octave into 4 sub-buckets, so interpolation
    // error is bounded by the sub-octave resolution (~12% relative).
    for (const double q : {0.10, 0.50, 0.90, 0.99}) {
        const double exact = exact_quantile(values, q);
        EXPECT_NEAR(hist.percentile(q), exact, 0.13 * exact) << "q=" << q;
    }
    // Percentiles are clamped to the observed range and ordered.
    EXPECT_GE(hist.percentile(0.0), values.front());
    EXPECT_LE(hist.percentile(1.0), values.back());
    EXPECT_LE(hist.percentile(0.5), hist.percentile(0.9));
    EXPECT_LE(hist.percentile(0.9), hist.percentile(0.99));
}

TEST(QueryTraceTest, PercentileEdgeCases) {
    obs::Histogram empty(obs::MetricsRegistry::hdr_us_bounds());
    EXPECT_EQ(empty.percentile(0.5), 0.0);

    obs::Histogram one(obs::MetricsRegistry::hdr_us_bounds());
    one.record(42.0);
    // A single sample: every percentile collapses to it via the [min, max]
    // clamp, regardless of which bucket it fell into.
    EXPECT_DOUBLE_EQ(one.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.99), 42.0);

    obs::Histogram beyond(obs::MetricsRegistry::hdr_us_bounds());
    beyond.record(1e12);  // overflow bucket (past the last edge)
    EXPECT_DOUBLE_EQ(beyond.percentile(0.99), 1e12);
}

// ---- context minting and scoping -------------------------------------------

TEST(QueryTraceTest, MintedContextsAreUniqueAndEncodeOrigin) {
    const obs::QueryContext a = obs::query_begin(3);
    const obs::QueryContext b = obs::query_begin(3);
    const obs::QueryContext c = obs::query_begin(0);
    EXPECT_TRUE(a.valid());
    EXPECT_NE(a.trace_id, b.trace_id);
    EXPECT_NE(b.trace_id, c.trace_id);
    EXPECT_EQ(a.trace_id >> 40, 4u);  // origin_rank + 1 in the high bits
    EXPECT_EQ(c.trace_id >> 40, 1u);
    EXPECT_EQ(a.origin_rank, 3);
    EXPECT_LT(a.seq, b.seq);
}

TEST(QueryTraceTest, QueryScopeNestsAndRestores) {
    EXPECT_FALSE(obs::current_query().valid());
    const obs::QueryContext outer = obs::query_begin(1);
    {
        obs::QueryScope s1(outer);
        EXPECT_EQ(obs::current_query().trace_id, outer.trace_id);
        const obs::QueryContext inner = obs::query_begin(2);
        {
            obs::QueryScope s2(inner);
            EXPECT_EQ(obs::current_query().trace_id, inner.trace_id);
        }
        EXPECT_EQ(obs::current_query().trace_id, outer.trace_id);
    }
    EXPECT_FALSE(obs::current_query().valid());
}

// ---- end-to-end attribution ------------------------------------------------

TEST(QueryTraceTest, DataServiceRoundAttributesEveryLeaf) {
    Written w;
    TraceArmed armed;
    const int nranks = 6;
    const GridDecomp decomp = grid_decomp_3d(nranks, kDomain);
    const std::uint64_t shipped0 = counter_value("service.bytes_shipped");
    const std::uint64_t hits0 = counter_value("read.leaf_cache_hit");
    const std::uint64_t misses0 = counter_value("read.leaf_cache_miss");
    const std::uint64_t hist0 = histogram_count("query.service.query_round.us");
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        DataService service(comm, w.meta_path);
        BatQuery query;
        query.box = decomp.rank_read_box(comm.rank());
        query.inclusive_upper = false;
        service.query_round(query);
    });

    // Exactly one record per concurrent query, each with a distinct trace id
    // minted at its origin.
    const std::vector<obs::QueryRecord> records = obs::query_records();
    ASSERT_EQ(records.size(), static_cast<std::size_t>(nranks));
    std::set<std::uint64_t> ids;
    std::set<std::int32_t> origins;
    std::uint64_t bytes_moved = 0;
    std::uint64_t leaves_total = 0;
    std::uint64_t leaves_remote = 0;
    std::uint64_t noted_cache = 0;
    for (const obs::QueryRecord& r : records) {
        EXPECT_STREQ(r.op, "service.query_round");
        EXPECT_TRUE(ids.insert(r.trace_id).second);
        origins.insert(r.origin_rank);
        EXPECT_EQ(r.trace_id >> 40,
                  static_cast<std::uint64_t>(r.origin_rank) + 1);
        // The four stages tile the wall time exactly — they are deltas of
        // consecutive timestamps over the whole round.
        EXPECT_EQ(r.request_ns + r.serve_ns + r.merge_ns + r.local_ns, r.wall_ns);
        bytes_moved += r.bytes_moved;
        leaves_total += r.leaves_local + r.leaves_remote;
        leaves_remote += r.leaves_remote;
        noted_cache += r.cache_hits + r.cache_misses;
    }
    EXPECT_EQ(origins.size(), static_cast<std::size_t>(nranks));

    // Accounting identities against the process-wide metrics: per-query
    // bytes sum to the server-side shipped total, and per-query leaf counts
    // sum to the leaf-cache lookups (one open per evaluated leaf).
    EXPECT_EQ(bytes_moved, counter_value("service.bytes_shipped") - shipped0);
    const std::uint64_t cache_delta = counter_value("read.leaf_cache_hit") - hits0 +
                                      counter_value("read.leaf_cache_miss") - misses0;
    EXPECT_EQ(leaves_total, cache_delta);
    // Cost-slot attribution sees the same lookups: serving ranks record
    // before the response ships, so nothing straggles past finalize.
    EXPECT_EQ(noted_cache, cache_delta);

    // Every remotely served leaf produced exactly one span, attributed to
    // the right query, with no duplicates under pool work-helping.
    const std::vector<obs::QueryServeSpan> spans = obs::query_serve_spans();
    EXPECT_EQ(spans.size(), leaves_remote);
    std::map<std::uint64_t, std::set<std::int32_t>> leaves_by_query;
    for (const obs::QueryServeSpan& sp : spans) {
        ASSERT_TRUE(ids.count(sp.trace_id)) << "span for unknown query";
        EXPECT_TRUE(leaves_by_query[sp.trace_id].insert(sp.leaf).second)
            << "leaf " << sp.leaf << " double-counted";
        EXPECT_GE(sp.serve_rank, 0);
        EXPECT_LT(sp.serve_rank, nranks);
        EXPECT_GT(sp.bytes, 0u);
    }
    for (const obs::QueryRecord& r : records) {
        EXPECT_EQ(leaves_by_query[r.trace_id].size(), r.leaves_remote)
            << "query " << r.trace_id;
    }
    EXPECT_EQ(obs::query_dropped(), 0u);
    // Wall latencies reached the always-on percentile histogram.
    EXPECT_EQ(histogram_count("query.service.query_round.us") - hist0,
              static_cast<std::uint64_t>(nranks));
}

TEST(QueryTraceTest, ReadParticlesEmitsRecords) {
    Written w;
    TraceArmed armed;
    const int nranks = 4;
    const GridDecomp decomp = grid_decomp_3d(nranks, kDomain);
    const std::uint64_t hist0 = histogram_count("query.read.read_particles.us");
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        read_particles(comm, w.meta_path, decomp.rank_read_box(comm.rank()));
    });
    const std::vector<obs::QueryRecord> records = obs::query_records();
    ASSERT_EQ(records.size(), static_cast<std::size_t>(nranks));
    std::uint64_t leaves_remote = 0;
    std::uint64_t particles = 0;
    for (const obs::QueryRecord& r : records) {
        EXPECT_STREQ(r.op, "read.read_particles");
        EXPECT_EQ(r.request_ns + r.serve_ns + r.merge_ns + r.local_ns, r.wall_ns);
        EXPECT_GT(r.leaves_local + r.leaves_remote, 0u);
        leaves_remote += r.leaves_remote;
        particles += r.particles;
    }
    EXPECT_EQ(particles, w.global.count());
    EXPECT_EQ(obs::query_serve_spans().size(), leaves_remote);
    EXPECT_EQ(histogram_count("query.read.read_particles.us") - hist0,
              static_cast<std::uint64_t>(nranks));
}

// ---- JSONL export ----------------------------------------------------------

TEST(QueryTraceTest, JsonlSchemaRoundTrips) {
    TraceArmed armed;
    const std::uint64_t id = (5ull << 40) | 7;

    obs::QueryServeSpan sp;
    sp.trace_id = id;
    sp.origin_rank = 4;
    sp.query_seq = 7;
    sp.serve_rank = 2;
    sp.leaf = 11;
    sp.start_ns = 1'000'000;
    sp.dur_ns = 250'000;
    sp.bytes = 4096;
    sp.cache_hit = true;
    obs::query_record_serve_span(sp);
    sp.leaf = 12;
    sp.cache_hit = false;
    obs::query_record_serve_span(sp);

    obs::QueryRecord r;
    r.trace_id = id;
    r.origin_rank = 4;
    r.seq = 7;
    r.op = "service.query_round";
    r.start_ns = 900'000;
    r.wall_ns = 5'000'000;
    r.request_ns = 1'000'000;
    r.serve_ns = 2'000'000;
    r.merge_ns = 1'500'000;
    r.local_ns = 500'000;
    r.leaves_local = 3;
    r.leaves_remote = 2;
    r.request_msgs = 1;
    r.bytes_moved = 8192;
    r.particles = 1234;
    r.cache_hits = 4;
    r.cache_misses = 1;
    r.pool_task_ns = 750'000;
    r.fastpath_windows = 6;
    obs::query_finalize(r);

    // A span whose query never finalizes must surface as an orphan line.
    obs::QueryServeSpan stray = sp;
    stray.trace_id = (3ull << 40) | 9;
    stray.origin_rank = 2;
    obs::query_record_serve_span(stray);

    std::istringstream lines(obs::query_log_jsonl());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    {
        const obs::json::Value doc = obs::json::parse(line);
        ASSERT_TRUE(doc.is_object());
        EXPECT_EQ(doc.find("schema")->string(), "bat-query-v1");
        EXPECT_EQ(doc.find("trace_id")->number(), static_cast<double>(id));
        EXPECT_EQ(doc.find("origin_rank")->number(), 4);
        EXPECT_EQ(doc.find("seq")->number(), 7);
        EXPECT_EQ(doc.find("op")->string(), "service.query_round");
        EXPECT_DOUBLE_EQ(doc.find("start_us")->number(), 900.0);
        EXPECT_DOUBLE_EQ(doc.find("wall_us")->number(), 5000.0);
        const obs::json::Value* stages = doc.find("stages");
        ASSERT_NE(stages, nullptr);
        EXPECT_DOUBLE_EQ(stages->find("request_us")->number(), 1000.0);
        EXPECT_DOUBLE_EQ(stages->find("serve_us")->number(), 2000.0);
        EXPECT_DOUBLE_EQ(stages->find("merge_us")->number(), 1500.0);
        EXPECT_DOUBLE_EQ(stages->find("local_us")->number(), 500.0);
        EXPECT_EQ(doc.find("leaves_local")->number(), 3);
        EXPECT_EQ(doc.find("leaves_remote")->number(), 2);
        EXPECT_EQ(doc.find("request_msgs")->number(), 1);
        EXPECT_EQ(doc.find("bytes_moved")->number(), 8192);
        EXPECT_EQ(doc.find("particles")->number(), 1234);
        EXPECT_EQ(doc.find("cache_hits")->number(), 4);
        EXPECT_EQ(doc.find("cache_misses")->number(), 1);
        EXPECT_DOUBLE_EQ(doc.find("pool_task_us")->number(), 750.0);
        EXPECT_EQ(doc.find("fastpath_windows")->number(), 6);
        const obs::json::Value* spans = doc.find("serve_spans");
        ASSERT_NE(spans, nullptr);
        ASSERT_TRUE(spans->is_array());
        ASSERT_EQ(spans->array().size(), 2u);
        const obs::json::Value& s0 = spans->array()[0];
        EXPECT_EQ(s0.find("rank")->number(), 2);
        EXPECT_EQ(s0.find("leaf")->number(), 11);
        EXPECT_DOUBLE_EQ(s0.find("start_us")->number(), 1000.0);
        EXPECT_DOUBLE_EQ(s0.find("dur_us")->number(), 250.0);
        EXPECT_EQ(s0.find("bytes")->number(), 4096);
        EXPECT_TRUE(s0.find("cache_hit")->is_bool());
        EXPECT_TRUE(s0.find("cache_hit")->boolean());
        EXPECT_FALSE(spans->array()[1].find("cache_hit")->boolean());
    }
    ASSERT_TRUE(std::getline(lines, line));
    {
        const obs::json::Value doc = obs::json::parse(line);
        EXPECT_EQ(doc.find("schema")->string(), "bat-query-orphan-v1");
        EXPECT_EQ(doc.find("trace_id")->number(),
                  static_cast<double>(stray.trace_id));
        ASSERT_NE(doc.find("span"), nullptr);
        EXPECT_EQ(doc.find("span")->find("leaf")->number(), 12);
    }
    EXPECT_FALSE(std::getline(lines, line));
}

TEST(QueryTraceTest, WriteQueryLogAppends) {
    testing::TempDir dir;
    TraceArmed armed;
    obs::QueryRecord r;
    r.trace_id = (1ull << 40) | 1;
    r.origin_rank = 0;
    r.op = "read.read_particles";
    r.wall_ns = 1'000'000;
    r.request_ns = 1'000'000;
    obs::query_finalize(r);
    const auto path = dir.path() / "queries.jsonl";
    ASSERT_TRUE(obs::write_query_log(path));
    ASSERT_TRUE(obs::write_query_log(path));  // appends, never truncates
    std::ifstream in(path);
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        EXPECT_NE(line.find("bat-query-v1"), std::string::npos);
        ++lines;
    }
    EXPECT_EQ(lines, 2);
}

// ---- sampling --------------------------------------------------------------

TEST(QueryTraceTest, SamplingIsPureFunctionOfTraceId) {
    TraceArmed armed;
    obs::set_query_sample_every(4);
    for (std::uint64_t n = 1; n <= 8; ++n) {
        obs::QueryRecord r;
        r.trace_id = (1ull << 40) | n;
        r.origin_rank = 0;
        r.op = "service.query_round";
        r.wall_ns = 1000;
        r.request_ns = 1000;
        obs::query_finalize(r);
        obs::QueryServeSpan sp;
        sp.trace_id = r.trace_id;
        sp.leaf = static_cast<std::int32_t>(n);
        sp.bytes = 1;
        obs::query_record_serve_span(sp);
    }
    // Low 40 bits mod 4 == 0 → n in {4, 8}: records and their spans agree.
    const std::vector<obs::QueryRecord> records = obs::query_records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].trace_id & 0xFF, 4u);
    EXPECT_EQ(records[1].trace_id & 0xFF, 8u);
    EXPECT_EQ(obs::query_serve_spans().size(), 2u);
}

}  // namespace
}  // namespace bat
