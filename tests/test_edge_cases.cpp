// Cross-cutting edge-case and failure-injection tests: the parallel
// pipelines with worker pools, zero-particle timesteps, missing/corrupted
// leaf files, degenerate geometry, and schema handling.

#include <gtest/gtest.h>

#include <mutex>

#include "core/dataset.hpp"
#include "io/reader.hpp"
#include "io/writer.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});

TEST(EdgeCaseTest, PipelineWithWorkerPoolMatchesSerial) {
    // The writer's tree + BAT builds parallelized by a ThreadPool must
    // produce the same particle population (and the same leaf count, since
    // the tree build is deterministic).
    const testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(8, kDomain);
    const ParticleSet global = make_uniform_particles(kDomain, 20'000, 3, 3);
    const auto per_rank = partition_particles(global, decomp);
    ThreadPool pool(4);

    int leaves_pooled = -1;
    int leaves_serial = -1;
    for (const bool use_pool : {false, true}) {
        std::filesystem::path meta_path;
        vmpi::Runtime::run(8, [&](vmpi::Comm& comm) {
            WriterConfig config;
            config.tree.target_file_size = 64 << 10;
            config.directory = dir.path();
            config.basename = use_pool ? "pooled" : "serial";
            config.pool = use_pool ? &pool : nullptr;
            const WriteResult result =
                write_particles(comm, per_rank[static_cast<std::size_t>(comm.rank())],
                                decomp.rank_box(comm.rank()), config);
            if (comm.rank() == 0) {
                meta_path = result.metadata_path;
                (use_pool ? leaves_pooled : leaves_serial) = result.num_leaves;
            }
        });
        Dataset ds(meta_path);
        EXPECT_EQ(testing::particle_keys(ds.collect(BatQuery{})),
                  testing::particle_keys(global));
    }
    EXPECT_EQ(leaves_pooled, leaves_serial);
}

TEST(EdgeCaseTest, ZeroParticleTimestep) {
    // A dump where no rank owns particles must produce a loadable, empty
    // data set and an empty read.
    const testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(4, kDomain);
    std::filesystem::path meta_path;
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        WriterConfig config;
        config.directory = dir.path();
        config.basename = "empty";
        const ParticleSet nothing(uniform_attr_names(2));
        const WriteResult result =
            write_particles(comm, nothing, decomp.rank_box(comm.rank()), config);
        if (comm.rank() == 0) {
            meta_path = result.metadata_path;
            EXPECT_EQ(result.num_leaves, 0);
        }
    });
    Dataset ds(meta_path);
    EXPECT_EQ(ds.num_particles(), 0u);
    EXPECT_EQ(ds.collect(BatQuery{}).count(), 0u);
    vmpi::Runtime::run(2, [&](vmpi::Comm& comm) {
        const ReadResult r = read_particles(comm, meta_path, kDomain);
        EXPECT_EQ(r.particles.count(), 0u);
    });
}

TEST(EdgeCaseTest, MissingLeafFileSurfacesError) {
    const testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(4, kDomain);
    const ParticleSet global = make_uniform_particles(kDomain, 4'000, 1, 5);
    const auto per_rank = partition_particles(global, decomp);
    std::vector<Box> bounds;
    for (int r = 0; r < 4; ++r) {
        bounds.push_back(decomp.rank_box(r));
    }
    WriterConfig config;
    config.tree.target_file_size = 16 << 10;
    config.directory = dir.path();
    config.basename = "victim";
    const WriteResult written = write_particles_serial(per_rank, bounds, config);

    // Delete one leaf file; whole-data-set reads must fail loudly, not
    // silently return partial data.
    const Metadata meta = Metadata::load(written.metadata_path);
    ASSERT_GT(meta.leaves.size(), 1u);
    std::filesystem::remove(dir.path() / meta.leaves[0].file);
    Dataset ds(written.metadata_path);
    EXPECT_THROW(ds.collect(BatQuery{}), Error);
}

TEST(EdgeCaseTest, CorruptedLeafFileDetected) {
    const testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(2, kDomain);
    const ParticleSet global = make_uniform_particles(kDomain, 2'000, 1, 7);
    const auto per_rank = partition_particles(global, decomp);
    const std::vector<Box> bounds{decomp.rank_box(0), decomp.rank_box(1)};
    WriterConfig config;
    config.directory = dir.path();
    config.basename = "corrupt";
    const WriteResult written = write_particles_serial(per_rank, bounds, config);
    const Metadata meta = Metadata::load(written.metadata_path);
    // Truncate the first leaf file.
    const auto victim = dir.path() / meta.leaves[0].file;
    const auto bytes = read_file(victim);
    write_file(victim, std::span(bytes).subspan(0, bytes.size() / 2));
    Dataset ds(written.metadata_path);
    EXPECT_THROW(ds.collect(BatQuery{}), Error);
}

TEST(EdgeCaseTest, DegeneratePlanarParticles) {
    // All particles in a z=const plane: Morton z axis is degenerate, treelet
    // splits never use it, and queries still work.
    ParticleSet set(uniform_attr_names(1));
    Pcg32 rng(9);
    for (int i = 0; i < 5'000; ++i) {
        const double v = rng.next_double();
        set.push_back(Vec3{rng.next_float(), rng.next_float(), 0.5f}, std::span(&v, 1));
    }
    const ParticleSet original = set;
    const auto bytes = serialize_bat(build_bat(std::move(set), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    BatQuery query;
    query.box = Box({0.2f, 0.2f, 0.5f}, {0.8f, 0.8f, 0.5f});
    std::uint64_t n = query_bat(file, query, [](Vec3, std::span<const double>) {});
    EXPECT_EQ(n, testing::brute_force_query(original, *query.box).size());
}

TEST(EdgeCaseTest, NoAttributesSchema) {
    // Pure positions (a simulation without attributes): everything works;
    // there are simply no bitmaps.
    ParticleSet set(std::vector<std::string>{});
    Pcg32 rng(11);
    for (int i = 0; i < 3'000; ++i) {
        set.push_back(Vec3{rng.next_float(), rng.next_float(), rng.next_float()}, {});
    }
    const ParticleSet original = set;
    const auto bytes = serialize_bat(build_bat(std::move(set), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    EXPECT_EQ(file.num_attrs(), 0u);
    BatQuery query;
    query.box = Box({0, 0, 0}, {0.5f, 0.5f, 0.5f});
    const std::uint64_t n =
        query_bat(file, query, [](Vec3, std::span<const double>) {});
    EXPECT_EQ(n, testing::brute_force_query(original, *query.box).size());
}

TEST(EdgeCaseTest, SingleParticlePerRank) {
    const testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(8, kDomain);
    std::mutex mutex;
    ParticleSet all(uniform_attr_names(1));
    std::filesystem::path meta_path;
    vmpi::Runtime::run(8, [&](vmpi::Comm& comm) {
        ParticleSet mine(uniform_attr_names(1));
        const Box box = decomp.rank_box(comm.rank());
        const double v = comm.rank();
        mine.push_back(box.center(), std::span(&v, 1));
        WriterConfig config;
        config.directory = dir.path();
        config.basename = "singles";
        const WriteResult result =
            write_particles(comm, mine, decomp.rank_box(comm.rank()), config);
        if (comm.rank() == 0) {
            meta_path = result.metadata_path;
        }
    });
    vmpi::Runtime::run(8, [&](vmpi::Comm& comm) {
        const ReadResult r =
            read_particles(comm, meta_path, decomp.rank_read_box(comm.rank()));
        std::lock_guard<std::mutex> lock(mutex);
        all.append(r.particles);
    });
    EXPECT_EQ(all.count(), 8u);
}

TEST(EdgeCaseTest, HugeAttributeValues) {
    // Extreme magnitudes must survive binning and the file round trip.
    ParticleSet set(uniform_attr_names(1));
    Pcg32 rng(13);
    for (int i = 0; i < 2'000; ++i) {
        const double v = (rng.next_double() - 0.5) * 1e30;
        set.push_back(Vec3{rng.next_float(), rng.next_float(), rng.next_float()},
                      std::span(&v, 1));
    }
    const ParticleSet original = set;
    const auto bytes = serialize_bat(build_bat(std::move(set), BatConfig{}));
    const BatFile file{std::span<const std::byte>(bytes)};
    const auto [lo, hi] = file.attr_range(0);
    BatQuery query;
    query.attr_filters.push_back({0, lo + 0.25 * (hi - lo), lo + 0.75 * (hi - lo)});
    const std::uint64_t n =
        query_bat(file, query, [](Vec3, std::span<const double>) {});
    EXPECT_EQ(n, testing::brute_force_query(original, Box({-2, -2, -2}, {2, 2, 2}), true,
                                            0, lo + 0.25 * (hi - lo),
                                            lo + 0.75 * (hi - lo))
                     .size());
}

TEST(EdgeCaseTest, ReaderWithDisjointBoundsGetsNothing) {
    const testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(4, kDomain);
    const ParticleSet global = make_uniform_particles(kDomain, 4'000, 1, 17);
    const auto per_rank = partition_particles(global, decomp);
    std::filesystem::path meta_path;
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        WriterConfig config;
        config.directory = dir.path();
        config.basename = "disjoint";
        const WriteResult result =
            write_particles(comm, per_rank[static_cast<std::size_t>(comm.rank())],
                            decomp.rank_box(comm.rank()), config);
        if (comm.rank() == 0) {
            meta_path = result.metadata_path;
        }
    });
    vmpi::Runtime::run(3, [&](vmpi::Comm& comm) {
        // All ranks ask for a region far outside the data.
        const Box far({100, 100, 100}, {101, 101, 101});
        const ReadResult r = read_particles(comm, meta_path, far);
        EXPECT_EQ(r.particles.count(), 0u);
    });
}

}  // namespace
}  // namespace bat
