// Tests for the AUG baseline (Kumar et al. 2019): grid sizing, assignment,
// empty-cell discarding, and the characteristic imbalance on nonuniform
// data that the adaptive tree fixes.

#include <gtest/gtest.h>

#include <set>

#include "core/agg_tree.hpp"
#include "core/aug.hpp"
#include "util/rng.hpp"
#include "workloads/mixtures.hpp"

namespace bat {
namespace {

std::vector<RankInfo> grid_ranks(int nx, int ny, int nz, std::uint64_t particles) {
    std::vector<RankInfo> ranks;
    for (int z = 0; z < nz; ++z) {
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                ranks.push_back(RankInfo{Box({float(x), float(y), float(z)},
                                             {float(x + 1), float(y + 1), float(z + 1)}),
                                         particles});
            }
        }
    }
    return ranks;
}

TEST(AugGridDimsTest, TargetLargerThanDataGivesOneCell) {
    const AugGridDims dims = aug_grid_dims(Box({0, 0, 0}, {1, 1, 1}), 100, 1000);
    EXPECT_EQ(dims.cells(), 1);
}

TEST(AugGridDimsTest, CellCountCoversData) {
    const AugGridDims dims = aug_grid_dims(Box({0, 0, 0}, {1, 1, 1}), 100'000, 1000);
    EXPECT_GE(dims.cells(), 100);
}

TEST(AugGridDimsTest, ElongatedDomainGetsElongatedGrid) {
    const AugGridDims dims = aug_grid_dims(Box({0, 0, 0}, {16, 1, 1}), 64'000, 1000);
    EXPECT_GT(dims.nx, dims.ny);
    EXPECT_GT(dims.nx, dims.nz);
}

TEST(AugTest, UniformDataBalancesWell) {
    const std::vector<RankInfo> ranks = grid_ranks(8, 8, 1, 1000);
    AugConfig config;
    config.target_file_size = 800'000;
    config.bytes_per_particle = 100;
    const Aggregation agg = build_aug(ranks, config);
    ASSERT_GT(agg.leaves.size(), 1u);
    // On uniform data the AUG's uniform-density assumption holds: leaves
    // should be within ~4x of each other.
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const AggLeaf& leaf : agg.leaves) {
        lo = std::min(lo, leaf.num_particles);
        hi = std::max(hi, leaf.num_particles);
    }
    EXPECT_LE(hi, 4 * lo);
}

TEST(AugTest, EveryNonEmptyRankAssigned) {
    std::vector<RankInfo> ranks = grid_ranks(4, 4, 2, 500);
    ranks[7].num_particles = 0;
    AugConfig config;
    config.target_file_size = 100'000;
    config.bytes_per_particle = 100;
    const Aggregation agg = build_aug(ranks, config);
    std::set<int> assigned;
    std::uint64_t total = 0;
    for (const AggLeaf& leaf : agg.leaves) {
        EXPECT_GT(leaf.num_particles, 0u);
        total += leaf.num_particles;
        for (int r : leaf.ranks) {
            EXPECT_TRUE(assigned.insert(r).second);
        }
    }
    EXPECT_EQ(total, 31u * 500u);
    EXPECT_EQ(agg.rank_to_leaf[7], -1);
    for (std::size_t r = 0; r < ranks.size(); ++r) {
        if (ranks[r].num_particles > 0) {
            EXPECT_GE(agg.rank_to_leaf[r], 0);
        }
    }
}

TEST(AugTest, EmptyCellsDiscarded) {
    // Particles only in one corner: the AUG grid spans the data bounds, but
    // cells without ranks must not become leaves.
    std::vector<RankInfo> ranks = grid_ranks(8, 8, 1, 0);
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        const Box& b = ranks[i].bounds;
        if (b.upper.x <= 2.f && b.upper.y <= 2.f) {
            ranks[i].num_particles = 10'000;
        }
    }
    AugConfig config;
    config.target_file_size = 200'000;
    config.bytes_per_particle = 100;
    const Aggregation agg = build_aug(ranks, config);
    for (const AggLeaf& leaf : agg.leaves) {
        EXPECT_GT(leaf.num_particles, 0u);
    }
}

TEST(AugTest, AllEmptyGivesNoLeaves) {
    const std::vector<RankInfo> ranks = grid_ranks(2, 2, 1, 0);
    const Aggregation agg = build_aug(ranks, AugConfig{});
    EXPECT_TRUE(agg.leaves.empty());
}

TEST(AugTest, HasMetadataTree) {
    const std::vector<RankInfo> ranks = grid_ranks(8, 8, 1, 1000);
    AugConfig config;
    config.target_file_size = 400'000;
    config.bytes_per_particle = 100;
    const Aggregation agg = build_aug(ranks, config);
    ASSERT_FALSE(agg.nodes.empty());
    // Every leaf must be reachable exactly once from the tree.
    std::set<int> reachable;
    for (const AggNode& node : agg.nodes) {
        if (node.is_leaf()) {
            EXPECT_TRUE(reachable.insert(node.leaf_id).second);
        }
    }
    EXPECT_EQ(reachable.size(), agg.leaves.size());
}

TEST(AugTest, NonuniformDataImbalancedVsAdaptive) {
    // The headline effect (paper Fig 9/11): on clustered data the AUG's
    // equal-volume cells produce a higher file-size spread than the
    // adaptive tree's equal-count leaves.
    Pcg32 rng(17);
    std::vector<RankInfo> ranks = grid_ranks(12, 12, 1, 0);
    // Dense cluster in one corner, sparse elsewhere.
    for (auto& r : ranks) {
        const Vec3 c = r.bounds.center();
        const bool dense = c.x < 3.f && c.y < 3.f;
        r.num_particles = dense ? 40'000 + rng.next_bounded(10'000)
                                : rng.next_bounded(400);
    }
    const std::uint64_t target = 2'000'000;
    AugConfig aug_config;
    aug_config.target_file_size = target;
    aug_config.bytes_per_particle = 100;
    const Aggregation aug = build_aug(ranks, aug_config);

    AggTreeConfig tree_config;
    tree_config.target_file_size = target;
    tree_config.bytes_per_particle = 100;
    const Aggregation adaptive = build_agg_tree(ranks, tree_config);

    auto max_leaf = [](const Aggregation& agg) {
        std::uint64_t m = 0;
        for (const AggLeaf& leaf : agg.leaves) {
            m = std::max(m, leaf.num_particles);
        }
        return m;
    };
    EXPECT_LT(max_leaf(adaptive), max_leaf(aug))
        << "adaptive aggregation should bound the largest file below AUG's";
}

}  // namespace
}  // namespace bat
