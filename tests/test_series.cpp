// Tests for time-series management: manifest round trips, the collective
// SeriesWriter over the virtual MPI runtime, and SeriesReader access.

#include <gtest/gtest.h>

#include "io/series.hpp"
#include "test_helpers.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});

TEST(TimeSeriesTest, ManifestRoundTrip) {
    TimeSeries series;
    series.timesteps = {{0, "a.batmeta"}, {100, "b.batmeta"}, {250, "c.batmeta"}};
    const TimeSeries back = TimeSeries::from_bytes(series.to_bytes());
    EXPECT_EQ(back.timesteps, series.timesteps);
    EXPECT_EQ(back.index_of(100), 1u);
    EXPECT_THROW(back.index_of(7), Error);
}

TEST(TimeSeriesTest, LoadRejectsGarbage) {
    testing::TempDir dir;
    const std::vector<std::byte> junk(32, std::byte{1});
    write_file(dir.path() / "junk.batseries", junk);
    EXPECT_THROW(TimeSeries::load(dir.path() / "junk.batseries"), Error);
}

TEST(SeriesTest, WriteAndReadBackThreeTimesteps) {
    testing::TempDir dir;
    const int nranks = 4;
    const GridDecomp decomp = grid_decomp_3d(nranks, kDomain);

    // Three timesteps with different particle populations.
    std::vector<ParticleSet> globals;
    for (int t = 0; t < 3; ++t) {
        globals.push_back(make_uniform_particles(
            kDomain, 3'000 + 1'000 * static_cast<std::size_t>(t), 2,
            static_cast<std::uint64_t>(t) + 50));
    }

    std::filesystem::path manifest;
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        WriterConfig base;
        base.tree.target_file_size = 32 << 10;
        base.directory = dir.path();
        base.basename = "series";
        SeriesWriter writer(base);
        for (int t = 0; t < 3; ++t) {
            const auto per_rank = partition_particles(globals[static_cast<std::size_t>(t)],
                                                      decomp);
            writer.write_timestep(comm, t * 100,
                                  per_rank[static_cast<std::size_t>(comm.rank())],
                                  decomp.rank_box(comm.rank()));
        }
        const auto path = writer.finalize(comm);
        if (comm.rank() == 0) {
            manifest = path;
        }
    });

    SeriesReader reader(manifest);
    ASSERT_EQ(reader.num_timesteps(), 3u);
    EXPECT_EQ(reader.timestep_at(0), 0);
    EXPECT_EQ(reader.timestep_at(2), 200);
    for (std::size_t i = 0; i < 3; ++i) {
        Dataset ds = reader.open(i);
        EXPECT_EQ(ds.num_particles(), globals[i].count());
        const ParticleSet all = ds.collect(BatQuery{});
        EXPECT_EQ(testing::particle_keys(all), testing::particle_keys(globals[i]));
    }
    Dataset mid = reader.open_timestep(100);
    EXPECT_EQ(mid.num_particles(), globals[1].count());
}

TEST(SeriesTest, RejectsOutOfOrderTimesteps) {
    testing::TempDir dir;
    vmpi::Runtime::run(1, [&](vmpi::Comm& comm) {
        WriterConfig base;
        base.directory = dir.path();
        base.basename = "bad";
        SeriesWriter writer(base);
        const ParticleSet set = make_uniform_particles(kDomain, 100, 1, 1);
        writer.write_timestep(comm, 10, set, kDomain);
        EXPECT_THROW(writer.write_timestep(comm, 5, set, kDomain), Error);
    });
}

}  // namespace
}  // namespace bat
