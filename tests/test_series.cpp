// Tests for time-series management: manifest round trips, the collective
// SeriesWriter over the virtual MPI runtime, and SeriesReader access.

#include <gtest/gtest.h>

#include "io/series.hpp"
#include "test_helpers.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});

TEST(TimeSeriesTest, ManifestRoundTrip) {
    TimeSeries series;
    series.timesteps = {{0, "a.batmeta"}, {100, "b.batmeta"}, {250, "c.batmeta"}};
    const TimeSeries back = TimeSeries::from_bytes(series.to_bytes());
    EXPECT_EQ(back.timesteps, series.timesteps);
    EXPECT_EQ(back.index_of(100), 1u);
    EXPECT_THROW(back.index_of(7), Error);
}

TEST(TimeSeriesTest, ManifestWithGapsRoundTripsOnDisk) {
    // Dump loops rarely write every simulation step; the manifest must
    // round-trip sparse, irregular timestep numbering through a real file.
    testing::TempDir dir;
    TimeSeries series;
    series.timesteps = {{0, "t0.batmeta"}, {7, "t7.batmeta"},
                        {500, "t500.batmeta"}, {501, "t501.batmeta"}};
    series.save(dir.path() / "gaps.batseries");
    const TimeSeries back = TimeSeries::load(dir.path() / "gaps.batseries");
    EXPECT_EQ(back.timesteps, series.timesteps);
    EXPECT_EQ(back.index_of(7), 1u);
    EXPECT_EQ(back.index_of(501), 3u);
    // Timesteps inside the gaps (and past the ends) are absent, not
    // rounded to a neighbor.
    EXPECT_THROW(back.index_of(1), Error);
    EXPECT_THROW(back.index_of(250), Error);
    EXPECT_THROW(back.index_of(502), Error);
}

TEST(TimeSeriesTest, LoadRejectsGarbage) {
    testing::TempDir dir;
    const std::vector<std::byte> junk(32, std::byte{1});
    write_file(dir.path() / "junk.batseries", junk);
    EXPECT_THROW(TimeSeries::load(dir.path() / "junk.batseries"), Error);
}

TEST(SeriesTest, WriteAndReadBackThreeTimesteps) {
    testing::TempDir dir;
    const int nranks = 4;
    const GridDecomp decomp = grid_decomp_3d(nranks, kDomain);

    // Three timesteps with different particle populations.
    std::vector<ParticleSet> globals;
    for (int t = 0; t < 3; ++t) {
        globals.push_back(make_uniform_particles(
            kDomain, 3'000 + 1'000 * static_cast<std::size_t>(t), 2,
            static_cast<std::uint64_t>(t) + 50));
    }

    std::filesystem::path manifest;
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        WriterConfig base;
        base.tree.target_file_size = 32 << 10;
        base.directory = dir.path();
        base.basename = "series";
        SeriesWriter writer(base);
        for (int t = 0; t < 3; ++t) {
            const auto per_rank = partition_particles(globals[static_cast<std::size_t>(t)],
                                                      decomp);
            writer.write_timestep(comm, t * 100,
                                  per_rank[static_cast<std::size_t>(comm.rank())],
                                  decomp.rank_box(comm.rank()));
        }
        const auto path = writer.finalize(comm);
        if (comm.rank() == 0) {
            manifest = path;
        }
    });

    SeriesReader reader(manifest);
    ASSERT_EQ(reader.num_timesteps(), 3u);
    EXPECT_EQ(reader.timestep_at(0), 0);
    EXPECT_EQ(reader.timestep_at(2), 200);
    for (std::size_t i = 0; i < 3; ++i) {
        Dataset ds = reader.open(i);
        EXPECT_EQ(ds.num_particles(), globals[i].count());
        const ParticleSet all = ds.collect(BatQuery{});
        EXPECT_EQ(testing::particle_keys(all), testing::particle_keys(globals[i]));
    }
    Dataset mid = reader.open_timestep(100);
    EXPECT_EQ(mid.num_particles(), globals[1].count());
}

TEST(SeriesTest, OpenTimestepMissingFromManifestThrows) {
    testing::TempDir dir;
    TimeSeries series;
    series.timesteps = {{0, "t0.batmeta"}, {100, "t100.batmeta"}};
    series.save(dir.path() / "s.batseries");
    SeriesReader reader(dir.path() / "s.batseries");
    EXPECT_THROW(reader.open_timestep(50), Error);
}

TEST(SeriesTest, ManifestIsWrittenByFinalizeOnly) {
    // A series is not readable mid-write: the manifest only exists after
    // finalize, and re-finalizing after further steps updates it in place.
    testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(2, kDomain);
    const auto manifest_path = dir.path() / "mid.batseries";
    vmpi::Runtime::run(2, [&](vmpi::Comm& comm) {
        WriterConfig base;
        base.tree.target_file_size = 32 << 10;
        base.directory = dir.path();
        base.basename = "mid";
        SeriesWriter writer(base);
        const auto write_step = [&](int t, std::uint64_t seed) {
            const auto per_rank = partition_particles(
                make_uniform_particles(kDomain, 2'000, 1, seed), decomp);
            writer.write_timestep(comm, t,
                                  per_rank[static_cast<std::size_t>(comm.rank())],
                                  decomp.rank_box(comm.rank()));
        };
        write_step(0, 11);
        write_step(10, 12);
        comm.barrier();
        if (comm.rank() == 0) {
            // Two timesteps written, nothing finalized: no manifest yet.
            EXPECT_FALSE(std::filesystem::exists(manifest_path));
            EXPECT_ANY_THROW(SeriesReader{manifest_path});
        }
        comm.barrier();
        writer.finalize(comm);
        if (comm.rank() == 0) {
            EXPECT_EQ(SeriesReader(manifest_path).num_timesteps(), 2u);
            EXPECT_GT(writer.manifest_bytes(), 0u);
        }
        // The writer stays usable after finalize: keep appending and
        // re-finalize to pick up the new timestep.
        write_step(20, 13);
        writer.finalize(comm);
        if (comm.rank() == 0) {
            SeriesReader reader(manifest_path);
            EXPECT_EQ(reader.num_timesteps(), 3u);
            EXPECT_EQ(reader.timestep_at(2), 20);
        }
    });
}

TEST(SeriesTest, RejectsOutOfOrderTimesteps) {
    testing::TempDir dir;
    vmpi::Runtime::run(1, [&](vmpi::Comm& comm) {
        WriterConfig base;
        base.directory = dir.path();
        base.basename = "bad";
        SeriesWriter writer(base);
        const ParticleSet set = make_uniform_particles(kDomain, 100, 1, 1);
        writer.write_timestep(comm, 10, set, kDomain);
        EXPECT_THROW(writer.write_timestep(comm, 5, set, kDomain), Error);
    });
}

}  // namespace
}  // namespace bat
