// Tests for the Karras bottom-up radix tree build (paper §III-C1): the
// hierarchy must cover the sorted key range exactly, parallel and serial
// builds must agree, and split prefixes must be consistent.

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "core/karras.hpp"
#include "util/rng.hpp"

namespace bat {
namespace {

std::vector<std::uint64_t> random_keys(int n, int bits, std::uint64_t seed) {
    Pcg32 rng(seed);
    std::set<std::uint64_t> keys;
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    while (static_cast<int>(keys.size()) < n) {
        keys.insert(rng.next_u64() & mask);
    }
    return {keys.begin(), keys.end()};
}

/// Walk the tree, checking each internal node covers exactly its children's
/// union and that leaves partition [0, k).
void validate(const RadixTree& tree, std::span<const std::uint64_t> codes, int bits) {
    if (codes.size() == 1) {
        EXPECT_TRUE(tree.internal.empty());
        return;
    }
    ASSERT_EQ(tree.internal.size(), codes.size() - 1);
    std::vector<bool> leaf_seen(codes.size(), false);
    std::function<std::pair<int, int>(int)> walk = [&](int node) -> std::pair<int, int> {
        const RadixNode& rn = tree.internal[static_cast<std::size_t>(node)];
        EXPECT_LE(rn.first, rn.last);
        // The node's common prefix must be shared by its whole range and be
        // longer than the parent's (checked implicitly via children below).
        const int prefix = common_prefix_bits(codes[static_cast<std::size_t>(rn.first)],
                                              codes[static_cast<std::size_t>(rn.last)], bits);
        EXPECT_EQ(prefix, rn.prefix_len);
        std::pair<int, int> left, right;
        if (rn.left_is_leaf) {
            left = {rn.left, rn.left};
            EXPECT_FALSE(leaf_seen[static_cast<std::size_t>(rn.left)]);
            leaf_seen[static_cast<std::size_t>(rn.left)] = true;
        } else {
            left = walk(rn.left);
            EXPECT_GT(tree.internal[static_cast<std::size_t>(rn.left)].prefix_len,
                      rn.prefix_len);
        }
        if (rn.right_is_leaf) {
            right = {rn.right, rn.right};
            EXPECT_FALSE(leaf_seen[static_cast<std::size_t>(rn.right)]);
            leaf_seen[static_cast<std::size_t>(rn.right)] = true;
        } else {
            right = walk(rn.right);
            EXPECT_GT(tree.internal[static_cast<std::size_t>(rn.right)].prefix_len,
                      rn.prefix_len);
        }
        // Children are adjacent, ordered, and union to the node's range.
        EXPECT_EQ(left.second + 1, right.first);
        EXPECT_EQ(left.first, rn.first);
        EXPECT_EQ(right.second, rn.last);
        return {left.first, right.second};
    };
    const auto [lo, hi] = walk(tree.root);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, static_cast<int>(codes.size()) - 1);
    for (bool seen : leaf_seen) {
        EXPECT_TRUE(seen);
    }
}

TEST(CommonPrefixTest, KnownValues) {
    EXPECT_EQ(common_prefix_bits(0b0000, 0b1000, 4), 0);
    EXPECT_EQ(common_prefix_bits(0b1000, 0b1001, 4), 3);
    EXPECT_EQ(common_prefix_bits(0b1010, 0b1010, 4), 4);
    EXPECT_EQ(common_prefix_bits(0x0, 0x1, 63), 62);
}

TEST(KarrasTest, SingleKey) {
    const std::vector<std::uint64_t> codes{5};
    const RadixTree tree = build_radix_tree(codes, 12);
    EXPECT_TRUE(tree.internal.empty());
}

TEST(KarrasTest, TwoKeys) {
    const std::vector<std::uint64_t> codes{1, 9};
    const RadixTree tree = build_radix_tree(codes, 4);
    ASSERT_EQ(tree.internal.size(), 1u);
    EXPECT_TRUE(tree.internal[0].left_is_leaf);
    EXPECT_TRUE(tree.internal[0].right_is_leaf);
    EXPECT_EQ(tree.internal[0].prefix_len, 0);
    validate(tree, codes, 4);
}

TEST(KarrasTest, SequentialKeys) {
    std::vector<std::uint64_t> codes;
    for (std::uint64_t i = 0; i < 64; ++i) {
        codes.push_back(i);
    }
    const RadixTree tree = build_radix_tree(codes, 6);
    validate(tree, codes, 6);
}

TEST(KarrasTest, RejectsUnsortedKeys) {
    const std::vector<std::uint64_t> codes{3, 1};
    EXPECT_ANY_THROW(build_radix_tree(codes, 4));
}

TEST(KarrasTest, RejectsDuplicateKeys) {
    const std::vector<std::uint64_t> codes{1, 1, 2};
    EXPECT_ANY_THROW(build_radix_tree(codes, 4));
}

class KarrasRandom : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KarrasRandom, ValidHierarchy) {
    const auto [n, bits, seed] = GetParam();
    const std::vector<std::uint64_t> codes =
        random_keys(n, bits, static_cast<std::uint64_t>(seed));
    const RadixTree tree = build_radix_tree(codes, bits);
    validate(tree, codes, bits);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KarrasRandom,
    ::testing::Values(std::tuple{3, 12, 1}, std::tuple{17, 12, 2}, std::tuple{100, 12, 3},
                      std::tuple{1000, 12, 4}, std::tuple{500, 30, 5},
                      std::tuple{2000, 63, 6}, std::tuple{4000, 12, 7}));

TEST(KarrasTest, ParallelMatchesSerial) {
    const std::vector<std::uint64_t> codes = random_keys(5000, 20, 11);
    const RadixTree serial = build_radix_tree(codes, 20, nullptr);
    ThreadPool pool(4);
    const RadixTree parallel = build_radix_tree(codes, 20, &pool);
    ASSERT_EQ(serial.internal.size(), parallel.internal.size());
    for (std::size_t i = 0; i < serial.internal.size(); ++i) {
        EXPECT_EQ(serial.internal[i].left, parallel.internal[i].left);
        EXPECT_EQ(serial.internal[i].right, parallel.internal[i].right);
        EXPECT_EQ(serial.internal[i].left_is_leaf, parallel.internal[i].left_is_leaf);
        EXPECT_EQ(serial.internal[i].right_is_leaf, parallel.internal[i].right_is_leaf);
        EXPECT_EQ(serial.internal[i].first, parallel.internal[i].first);
        EXPECT_EQ(serial.internal[i].last, parallel.internal[i].last);
        EXPECT_EQ(serial.internal[i].prefix_len, parallel.internal[i].prefix_len);
    }
}

}  // namespace
}  // namespace bat
