// Tests for the top-level metadata (paper §III-D): bitmap remapping from
// local to global ranges, bottom-up node merges, serialization, and leaf
// queries.

#include <gtest/gtest.h>

#include "core/bat_builder.hpp"
#include "core/metadata.hpp"
#include "test_helpers.hpp"

namespace bat {
namespace {

TEST(RemapBitmapTest, IdentityWhenRangesMatch) {
    const std::pair<double, double> range{0.0, 1.0};
    for (std::uint32_t bits : {0x1u, 0x80000000u, 0x00010000u, 0xFFFFFFFFu}) {
        const std::uint32_t out = remap_bitmap(bits, range, range);
        // Conservative: every original bin remains covered.
        EXPECT_EQ(out & bits, bits);
    }
}

TEST(RemapBitmapTest, ZeroStaysZero) {
    EXPECT_EQ(remap_bitmap(0, std::pair{0.0, 1.0}, std::pair{0.0, 10.0}), 0u);
}

TEST(RemapBitmapTest, LocalSubrangeMapsIntoGlobalPrefix) {
    // Local range [0, 1] inside global [0, 4]: local bins map into the first
    // quarter of the global bins.
    const std::uint32_t out = remap_bitmap(0xFFFFFFFFu, std::pair{0.0, 1.0}, std::pair{0.0, 4.0});
    for (int b = 0; b < 8; ++b) {
        EXPECT_NE(out & (1u << b), 0u) << "bin " << b;
    }
    for (int b = 10; b < 32; ++b) {
        EXPECT_EQ(out & (1u << b), 0u) << "bin " << b;
    }
}

TEST(RemapBitmapTest, NeverLosesValues) {
    // Any value covered by a local bin must be covered by the remapped
    // global bitmap.
    const std::pair<double, double> local{2.0, 6.0};
    const std::pair<double, double> global{0.0, 10.0};
    for (int bin = 0; bin < kBitmapBins; ++bin) {
        const std::uint32_t out = remap_bitmap(1u << bin, local, global);
        const double width = (local.second - local.first) / kBitmapBins;
        for (double frac : {0.0, 0.5, 0.999}) {
            const double v = local.first + (bin + frac) * width;
            const int gbin = bitmap_bin(v, global.first, global.second);
            EXPECT_NE(out & (1u << gbin), 0u)
                << "value " << v << " lost (local bin " << bin << ")";
        }
    }
}

TEST(RemapBitmapTest, DegenerateLocalRange) {
    const std::uint32_t out = remap_bitmap(0x1u, std::pair{5.0, 5.0}, std::pair{0.0, 10.0});
    EXPECT_NE(out & (1u << bitmap_bin(5.0, 0.0, 10.0)), 0u);
}

// ---- metadata assembly -----------------------------------------------------

Aggregation two_leaf_aggregation() {
    // Build a real adaptive aggregation over 4 ranks in a row.
    std::vector<RankInfo> ranks;
    for (int i = 0; i < 4; ++i) {
        ranks.push_back(
            RankInfo{Box({float(i), 0, 0}, {float(i + 1), 1, 1}), 1000});
    }
    AggTreeConfig config;
    config.target_file_size = 200'000;
    config.bytes_per_particle = 100;
    Aggregation agg = build_agg_tree(ranks, config);
    agg.assign_aggregators(4);
    return agg;
}

std::vector<LeafReport> reports_for(const Aggregation& agg, std::size_t nattrs) {
    std::vector<LeafReport> reports;
    for (std::size_t i = 0; i < agg.leaves.size(); ++i) {
        LeafReport r;
        r.leaf_id = static_cast<int>(i);
        r.num_particles = agg.leaves[i].num_particles;
        for (std::size_t a = 0; a < nattrs; ++a) {
            // Leaf i sees values in [i, i+1].
            r.ranges.emplace_back(static_cast<double>(i), static_cast<double>(i + 1));
            r.root_bitmaps.push_back(0x0F0F0F0Fu);
        }
        reports.push_back(std::move(r));
    }
    return reports;
}

std::vector<std::string> files_for(const Aggregation& agg) {
    std::vector<std::string> files;
    for (std::size_t i = 0; i < agg.leaves.size(); ++i) {
        files.push_back("leaf_" + std::to_string(i) + ".bat");
    }
    return files;
}

TEST(MetadataTest, GlobalRangesAreUnionOfLocal) {
    const Aggregation agg = two_leaf_aggregation();
    const auto reports = reports_for(agg, 2);
    const Metadata meta =
        build_metadata(agg, {"a", "b"}, reports, files_for(agg));
    EXPECT_DOUBLE_EQ(meta.global_ranges[0].first, 0.0);
    EXPECT_DOUBLE_EQ(meta.global_ranges[0].second,
                     static_cast<double>(agg.leaves.size()));
}

TEST(MetadataTest, TotalParticlesPreserved) {
    const Aggregation agg = two_leaf_aggregation();
    const auto reports = reports_for(agg, 1);
    const Metadata meta = build_metadata(agg, {"a"}, reports, files_for(agg));
    EXPECT_EQ(meta.total_particles(), agg.total_particles());
}

TEST(MetadataTest, NodeBitmapsMergeBottomUp) {
    const Aggregation agg = two_leaf_aggregation();
    const auto reports = reports_for(agg, 1);
    const Metadata meta = build_metadata(agg, {"a"}, reports, files_for(agg));
    ASSERT_FALSE(meta.nodes.empty());
    // Root bitmap must be the OR of all leaf bitmaps.
    std::uint32_t expected = 0;
    for (const MetaLeaf& leaf : meta.leaves) {
        expected |= leaf.bitmaps[0];
    }
    EXPECT_EQ(meta.node_bitmaps[0], expected);
}

TEST(MetadataTest, SerializationRoundTrip) {
    const Aggregation agg = two_leaf_aggregation();
    const auto reports = reports_for(agg, 3);
    const Metadata meta =
        build_metadata(agg, {"x", "y", "z"}, reports, files_for(agg));
    const Metadata back = Metadata::from_bytes(meta.to_bytes());
    EXPECT_EQ(back.attr_names, meta.attr_names);
    EXPECT_EQ(back.global_ranges, meta.global_ranges);
    EXPECT_EQ(back.node_bitmaps, meta.node_bitmaps);
    ASSERT_EQ(back.leaves.size(), meta.leaves.size());
    for (std::size_t i = 0; i < meta.leaves.size(); ++i) {
        EXPECT_EQ(back.leaves[i].file, meta.leaves[i].file);
        EXPECT_EQ(back.leaves[i].num_particles, meta.leaves[i].num_particles);
        EXPECT_EQ(back.leaves[i].bitmaps, meta.leaves[i].bitmaps);
        EXPECT_EQ(back.leaves[i].local_ranges, meta.leaves[i].local_ranges);
        EXPECT_EQ(back.leaves[i].bounds, meta.leaves[i].bounds);
    }
    ASSERT_EQ(back.nodes.size(), meta.nodes.size());
    for (std::size_t i = 0; i < meta.nodes.size(); ++i) {
        EXPECT_EQ(back.nodes[i].leaf_id, meta.nodes[i].leaf_id);
        EXPECT_EQ(back.nodes[i].left, meta.nodes[i].left);
        EXPECT_EQ(back.nodes[i].right, meta.nodes[i].right);
    }
}

TEST(MetadataTest, SaveAndLoad) {
    const testing::TempDir dir;
    const Aggregation agg = two_leaf_aggregation();
    const auto reports = reports_for(agg, 1);
    const Metadata meta = build_metadata(agg, {"a"}, reports, files_for(agg));
    const auto path = dir.path() / "meta.batmeta";
    meta.save(path);
    const Metadata back = Metadata::load(path);
    EXPECT_EQ(back.total_particles(), meta.total_particles());
    EXPECT_EQ(back.leaves.size(), meta.leaves.size());
}

TEST(MetadataTest, LoadRejectsGarbage) {
    const testing::TempDir dir;
    const auto path = dir.path() / "bad.batmeta";
    const std::vector<std::byte> junk(64, std::byte{0x5A});
    write_file(path, junk);
    EXPECT_THROW(Metadata::load(path), Error);
}

TEST(MetadataTest, QueryLeavesBySpace) {
    const Aggregation agg = two_leaf_aggregation();
    const auto reports = reports_for(agg, 1);
    const Metadata meta = build_metadata(agg, {"a"}, reports, files_for(agg));
    // A box overlapping only the first rank's cell.
    const Box box({0.1f, 0.1f, 0.1f}, {0.4f, 0.4f, 0.4f});
    const std::vector<int> hits = meta.query_leaves(box);
    ASSERT_FALSE(hits.empty());
    for (int leaf : hits) {
        EXPECT_TRUE(meta.leaves[static_cast<std::size_t>(leaf)].bounds.overlaps(box));
    }
    // Every overlapping leaf is reported.
    for (std::size_t i = 0; i < meta.leaves.size(); ++i) {
        if (meta.leaves[i].bounds.overlaps(box)) {
            EXPECT_NE(std::find(hits.begin(), hits.end(), static_cast<int>(i)), hits.end());
        }
    }
}

TEST(MetadataTest, QueryLeavesByAttribute) {
    const Aggregation agg = two_leaf_aggregation();
    // Leaf i covers attribute range [i, i+1] with a full local bitmap.
    std::vector<LeafReport> reports = reports_for(agg, 1);
    for (auto& r : reports) {
        r.root_bitmaps[0] = 0xFFFFFFFFu;
    }
    const Metadata meta = build_metadata(agg, {"a"}, reports, files_for(agg));
    // Filter for values near 0.5: only leaf 0 can match.
    const std::vector<AttrFilter> filters{{0, 0.4, 0.6}};
    const std::vector<int> hits = meta.query_leaves(std::nullopt, filters);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0], 0);
    // Values beyond every leaf: nothing.
    const std::vector<AttrFilter> none{
        {0, static_cast<double>(agg.leaves.size()) + 5.0,
         static_cast<double>(agg.leaves.size()) + 6.0}};
    EXPECT_TRUE(meta.query_leaves(std::nullopt, none).empty());
}

TEST(LeafReportTest, SerializationRoundTrip) {
    LeafReport r;
    r.leaf_id = 7;
    r.num_particles = 123456;
    r.ranges = {{-1.5, 2.5}, {0.0, 0.0}};
    r.root_bitmaps = {0xDEADBEEF, 0x1};
    const LeafReport back = LeafReport::from_bytes(r.to_bytes());
    EXPECT_EQ(back.leaf_id, 7);
    EXPECT_EQ(back.num_particles, 123456u);
    EXPECT_EQ(back.ranges, r.ranges);
    EXPECT_EQ(back.root_bitmaps, r.root_bitmaps);
}

}  // namespace
}  // namespace bat
