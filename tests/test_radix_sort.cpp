// Unit tests for the parallel LSD radix sort that orders Morton codes in
// build_bat: equivalence with std::sort on adversarial key patterns,
// stability (index tie-break), and serial-vs-pooled identity.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/radix_sort.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bat {
namespace {

/// The order build_bat relied on before the radix sort: iota + std::sort
/// with an indirect (key, index) comparator.
std::vector<std::uint32_t> reference_order(const std::vector<std::uint64_t>& keys) {
    std::vector<std::uint32_t> order(keys.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
    });
    return order;
}

void expect_matches_reference(const std::vector<std::uint64_t>& keys) {
    const std::vector<std::uint32_t> expected = reference_order(keys);
    EXPECT_EQ(radix_sort_order(keys, nullptr), expected) << "serial radix diverged";
    ThreadPool pool(4);
    EXPECT_EQ(radix_sort_order(keys, &pool), expected) << "pooled radix diverged";
}

TEST(RadixSortTest, Empty) { expect_matches_reference({}); }

TEST(RadixSortTest, SingleElement) { expect_matches_reference({42}); }

TEST(RadixSortTest, AllEqualKeys) {
    // Pass skipping must still yield the identity (stable) permutation.
    expect_matches_reference(std::vector<std::uint64_t>(100'000, 0xABCDEF));
}

TEST(RadixSortTest, PreSorted) {
    std::vector<std::uint64_t> keys(100'000);
    std::iota(keys.begin(), keys.end(), 0u);
    expect_matches_reference(keys);
}

TEST(RadixSortTest, ReverseSorted) {
    std::vector<std::uint64_t> keys(100'000);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        keys[i] = keys.size() - i;
    }
    expect_matches_reference(keys);
}

TEST(RadixSortTest, RandomWithDuplicates) {
    Pcg32 rng(7);
    std::vector<std::uint64_t> keys(200'000);
    for (auto& k : keys) {
        k = rng.next_u32() & 0xFFF;  // heavy duplication exercises stability
    }
    expect_matches_reference(keys);
}

TEST(RadixSortTest, FullWidthRandomKeys) {
    Pcg32 rng(9);
    std::vector<std::uint64_t> keys(150'000);
    for (auto& k : keys) {
        k = rng.next_u64();  // all 8 digit passes active, high bit set
    }
    expect_matches_reference(keys);
}

TEST(RadixSortTest, OnlyHighByteDiffers) {
    // Pass skipping: 7 of 8 passes are no-ops; the active pass must still
    // produce the right order.
    Pcg32 rng(11);
    std::vector<std::uint64_t> keys(100'000);
    for (auto& k : keys) {
        k = (std::uint64_t{rng.next_u32() & 0xFF} << 56) | 0x123456;
    }
    expect_matches_reference(keys);
}

TEST(RadixSortTest, BelowComparisonCutoff) {
    Pcg32 rng(13);
    std::vector<std::uint64_t> keys(100);  // comparison-sort fallback path
    for (auto& k : keys) {
        k = rng.next_u64() & 0xF;
    }
    expect_matches_reference(keys);
}

TEST(RadixSortTest, PairsStableOnEqualKeys) {
    // radix_sort_pairs with arbitrary (non-iota) indices: equal keys must
    // keep their input order (LSD stability), which is what makes
    // radix_sort_order reproduce the (key, index) tie-break.
    Pcg32 rng(17);
    std::vector<KeyIndex> pairs(50'000);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        pairs[i] = KeyIndex{rng.next_u32() & 0x3, static_cast<std::uint32_t>(i * 7 % 50'000)};
    }
    std::vector<KeyIndex> expected = pairs;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const KeyIndex& a, const KeyIndex& b) { return a.key < b.key; });
    radix_sort_pairs(pairs, nullptr);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_EQ(pairs[i].key, expected[i].key) << "at " << i;
        ASSERT_EQ(pairs[i].index, expected[i].index) << "at " << i;
    }
}

TEST(RadixSortTest, PooledMatchesSerialOnLargeInput) {
    // Large enough to take the parallel path (n >= 2 * kMinBlock = 64k).
    Pcg32 rng(19);
    std::vector<std::uint64_t> keys(300'000);
    for (auto& k : keys) {
        k = rng.next_u64() & ((std::uint64_t{1} << 63) - 1);
    }
    const std::vector<std::uint32_t> serial = radix_sort_order(keys, nullptr);
    ThreadPool pool(4);
    EXPECT_EQ(radix_sort_order(keys, &pool), serial);
}

}  // namespace
}  // namespace bat
