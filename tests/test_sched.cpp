// Tests for the deterministic schedule explorer and vector-clock race
// checker (src/sched, docs/CORRECTNESS.md §5): bit-exact replay from a
// seed, detection of the PR 5 bug classes (diag-provider race, stale
// watchdog-arming deadlock) reduced to fixtures, and suppression of false
// races across every synchronization edge the checker models (message
// match, lock release→acquire, task completion→wait).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sched/sched.hpp"
#include "util/lock_order.hpp"
#include "util/thread_pool.hpp"
#include "vmpi/comm.hpp"

namespace bat {
namespace {

sched::Options quick_options(std::uint64_t seed) {
    sched::Options opts;
    opts.seed = seed;
    // Fixtures finish in tens of decisions; a tight no-progress budget keeps
    // the deadlock tests fast without tripping on healthy runs.
    opts.deadlock_decisions = 2'000;
    return opts;
}

/// Two ranks ping-pong a few messages while a pool runs small tasks:
/// enough concurrency that different seeds genuinely produce different
/// schedules.
void pingpong_scenario() {
    ThreadPool pool(2);
    vmpi::Runtime::run(2, [&pool](vmpi::Comm& comm) {
        TaskGroup group(pool);
        for (int i = 0; i < 3; ++i) {
            group.run([] {});
        }
        const int peer = 1 - comm.rank();
        for (int i = 0; i < 3; ++i) {
            comm.isend(peer, i, vmpi::Bytes{});
            (void)comm.recv(peer, i);
        }
        group.wait();
        comm.barrier();
    });
}

TEST(Sched, ReplayIsBitExact) {
    sched::Options opts = quick_options(11);
    opts.record_trace = true;
    const sched::RunResult a = sched::run_scheduled(opts, pingpong_scenario);
    const sched::RunResult b = sched::run_scheduled(opts, pingpong_scenario);

    ASSERT_FALSE(a.failed()) << a.summary();
    ASSERT_FALSE(b.failed()) << b.summary();
    EXPECT_EQ(a.decisions, b.decisions);
    EXPECT_EQ(a.trace_hash, b.trace_hash);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].step, b.trace[i].step);
        EXPECT_EQ(a.trace[i].from, b.trace[i].from);
        EXPECT_EQ(a.trace[i].to, b.trace[i].to);
        EXPECT_EQ(a.trace[i].op, b.trace[i].op);
    }
}

TEST(Sched, SeedsExploreDistinctSchedules) {
    std::set<std::uint64_t> hashes;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const sched::RunResult r =
            sched::run_scheduled(quick_options(seed), pingpong_scenario);
        ASSERT_FALSE(r.failed()) << r.summary();
        hashes.insert(r.trace_hash);
    }
    // Eight seeds of a pipeline with two ranks and two workers must not all
    // collapse onto one interleaving.
    EXPECT_GT(hashes.size(), 1u);
}

// ---- PR 5 bug class 1: diag-provider race ----------------------------------

/// The diag-provider race reduced to a fixture: one rank publishes state,
/// the other samples it, with no synchronization between them.
void diag_race_fixture() {
    static int state = 0;
    vmpi::Runtime::run(2, [](vmpi::Comm& comm) {
        if (comm.rank() == 0) {
            sched::note_access(&state, "fixture.diag_state", /*is_write=*/true);
            state = 1;
        } else {
            sched::note_access(&state, "fixture.diag_state", /*is_write=*/false);
            static_cast<void>(state);
        }
    });
}

TEST(Sched, SweepCatchesDiagProviderRace) {
    // The conflicting pair exists on every schedule, so every seed of the
    // sweep must report it (acceptance: "caught within the sweep").
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        sched::Options opts = quick_options(seed);
        opts.throw_on_race = false;  // complete the run, inspect the report
        const sched::RunResult r = sched::run_scheduled(opts, diag_race_fixture);
        EXPECT_FALSE(r.races.empty()) << "seed " << seed << " missed the race";
        if (!r.races.empty()) {
            EXPECT_NE(r.races.front().find("fixture.diag_state"), std::string::npos)
                << r.races.front();
        }
    }
}

TEST(Sched, MessageEdgeOrdersTheFixedProvider) {
    // The fix: sample only after a message from the publisher. The
    // send→match edge supplies the happens-before; no seed may report a
    // race (false-positive regression guard).
    const auto fixed = [] {
        static int state = 0;
        state = 0;
        vmpi::Runtime::run(2, [](vmpi::Comm& comm) {
            if (comm.rank() == 0) {
                sched::note_access(&state, "fixture.diag_state", /*is_write=*/true);
                state = 1;
                comm.isend(1, 3, vmpi::Bytes{});
            } else {
                (void)comm.recv(0, 3);
                sched::note_access(&state, "fixture.diag_state", /*is_write=*/false);
                static_cast<void>(state);
            }
        });
    };
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const sched::RunResult r = sched::run_scheduled(quick_options(seed), fixed);
        EXPECT_TRUE(r.races.empty()) << "seed " << seed << ": " << r.races.front();
        ASSERT_FALSE(r.failed()) << r.summary();
    }
}

// ---- PR 5 bug class 2: stale watchdog arming -------------------------------

/// The watchdog-arming deadlock reduced to a fixture: rank 0 checks for the
/// "arm" message with one stale iprobe instead of a blocking receive; on
/// schedules where the probe runs first, rank 1's ack wait hangs forever.
void stale_arm_fixture() {
    vmpi::Runtime::run(2, [](vmpi::Comm& comm) {
        constexpr int kArmTag = 7;
        constexpr int kAckTag = 8;
        if (comm.rank() == 0) {
            if (comm.iprobe(1, kArmTag)) {
                (void)comm.recv(1, kArmTag);
                comm.isend(1, kAckTag, vmpi::Bytes{});
            }
        } else {
            comm.isend(0, kArmTag, vmpi::Bytes{});
            (void)comm.recv(0, kAckTag);
        }
    });
}

TEST(Sched, SweepFindsStaleArmDeadlockAndReplaysIt) {
    std::vector<sched::RunResult> failing;
    std::size_t clean = 0;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const sched::RunResult r = sched::run_scheduled(quick_options(seed), stale_arm_fixture);
        EXPECT_TRUE(r.races.empty()) << r.races.front();
        if (r.deadlock) {
            failing.push_back(r);
        } else {
            ++clean;
        }
    }
    // The bug is schedule-dependent: the sweep must find it without every
    // seed tripping (some schedules deliver the arm message in time).
    EXPECT_FALSE(failing.empty()) << "16 seeds never reached the deadlock";
    EXPECT_GT(clean, 0u) << "every seed deadlocked — fixture is not schedule-dependent";

    // Acceptance: every failing seed replays deterministically with an
    // identical decision trace.
    for (const sched::RunResult& f : failing) {
        const sched::RunResult again =
            sched::run_scheduled(quick_options(f.seed), stale_arm_fixture);
        EXPECT_TRUE(again.deadlock) << "seed " << f.seed << " did not replay the deadlock";
        EXPECT_EQ(again.trace_hash, f.trace_hash) << "seed " << f.seed;
        EXPECT_EQ(again.decisions, f.decisions) << "seed " << f.seed;
    }
}

// ---- synchronization edges suppress false positives ------------------------

TEST(Sched, LockEdgeSuppressesFalseRace) {
    // Both ranks mutate shared state under one CheckedMutex: the lock
    // release→acquire clock edge must order the accesses on every schedule.
    const auto guarded = [] {
        static CheckedMutex mutex{"test.sched_counter"};
        static int counter = 0;
        counter = 0;
        vmpi::Runtime::run(2, [](vmpi::Comm&) {
            for (int i = 0; i < 3; ++i) {
                std::lock_guard<CheckedMutex> lock(mutex);
                sched::note_access(&counter, "test.sched_counter", /*is_write=*/true);
                ++counter;
            }
        });
    };
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const sched::RunResult r = sched::run_scheduled(quick_options(seed), guarded);
        EXPECT_TRUE(r.races.empty()) << "seed " << seed << ": " << r.races.front();
        ASSERT_FALSE(r.failed()) << r.summary();
    }
}

TEST(Sched, TaskEdgesOrderPoolWorkAgainstWait) {
    // enqueue→dequeue orders the worker's write after main's setup;
    // completion→wait orders main's read after the worker's write.
    const auto pool_flow = [] {
        static int value = 0;
        value = 0;
        ThreadPool pool(2);
        TaskGroup group(pool);
        sched::note_access(&value, "test.pool_value", /*is_write=*/true);
        value = 1;
        group.run([] {
            sched::note_access(&value, "test.pool_value", /*is_write=*/true);
            value = 2;
        });
        group.wait();
        sched::note_access(&value, "test.pool_value", /*is_write=*/false);
        static_cast<void>(value);
    };
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const sched::RunResult r = sched::run_scheduled(quick_options(seed), pool_flow);
        EXPECT_TRUE(r.races.empty()) << "seed " << seed << ": " << r.races.front();
        ASSERT_FALSE(r.failed()) << r.summary();
    }
}

// ---- env arming ------------------------------------------------------------

TEST(Sched, EnvArmedRunWritesReportLine) {
    const std::filesystem::path report =
        std::filesystem::temp_directory_path() /
        ("sched_report_" + std::to_string(::getpid()) + ".jsonl");
    std::filesystem::remove(report);
    ::setenv("BAT_SCHED_SEED", "5", 1);
    ::setenv("BAT_SCHED_TRACE_FILE", report.c_str(), 1);

    vmpi::Runtime::run(2, [](vmpi::Comm& comm) { comm.barrier(); });

    ::unsetenv("BAT_SCHED_SEED");
    ::unsetenv("BAT_SCHED_TRACE_FILE");

    std::ifstream f(report);
    ASSERT_TRUE(f.good()) << "no report written to " << report;
    std::string line;
    ASSERT_TRUE(std::getline(f, line));
    EXPECT_NE(line.find("\"bat_sched\":\"v1\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"seed\":5"), std::string::npos) << line;
    EXPECT_NE(line.find("\"trace_hash\":"), std::string::npos) << line;
    std::filesystem::remove(report);
}

TEST(Sched, DisarmedRunsStayUnscheduled) {
    EXPECT_FALSE(sched::active());
    EXPECT_FALSE(sched::maybe_active());
    // note_access and the yield points must be safe no-ops when disarmed.
    int x = 0;
    sched::note_access(&x, "test.disarmed", true);
    sched::yield_point("test.disarmed");
    sched::yield_blocked("test.disarmed");
    EXPECT_EQ(sched::announce_thread("test"), 0u);
    EXPECT_TRUE(sched::thread_finished(0));
}

}  // namespace
}  // namespace bat
