// Tests for the workload generators and rank decompositions: determinism,
// bounds, schema, the paper's distribution properties (boiler growth +
// nonuniformity, dam break fixed count + migration).

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/boiler.hpp"
#include "workloads/dambreak.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/mixtures.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

// ---- decomposition ---------------------------------------------------------

TEST(DecompTest, Grid3dCoversRankCount) {
    for (int n : {1, 2, 6, 7, 48, 64, 100}) {
        const GridDecomp d = grid_decomp_3d(n, Box({0, 0, 0}, {1, 1, 1}));
        EXPECT_EQ(d.nranks(), n);
    }
}

TEST(DecompTest, Grid2dKeepsNzOne) {
    for (int n : {1, 4, 12, 36}) {
        const GridDecomp d = grid_decomp_2d(n, Box({0, 0, 0}, {4, 1, 2}));
        EXPECT_EQ(d.nranks(), n);
        EXPECT_EQ(d.nz, 1);
    }
}

TEST(DecompTest, ElongatedDomainGetsMoreCellsAlongLongAxis) {
    const GridDecomp d = grid_decomp_3d(16, Box({0, 0, 0}, {16, 1, 1}));
    EXPECT_GT(d.nx, d.ny);
    EXPECT_GT(d.nx, d.nz);
}

TEST(DecompTest, RankBoxesTileTheDomain) {
    const Box domain({0, 0, 0}, {3, 2, 1});
    const GridDecomp d = grid_decomp_3d(12, domain);
    Box unioned;
    float volume = 0;
    for (int r = 0; r < d.nranks(); ++r) {
        const Box b = d.rank_box(r);
        unioned.extend(b);
        const Vec3 e = b.extent();
        volume += e.x * e.y * e.z;
    }
    EXPECT_EQ(unioned, domain);
    EXPECT_NEAR(volume, 6.0f, 1e-3f);
}

TEST(DecompTest, OwnerMatchesRankBox) {
    const GridDecomp d = grid_decomp_3d(24, Box({0, 0, 0}, {2, 3, 1}));
    Pcg32 rng(4);
    for (int i = 0; i < 500; ++i) {
        const Vec3 p{2 * rng.next_float(), 3 * rng.next_float(), rng.next_float()};
        const int owner = d.owner(p);
        EXPECT_TRUE(d.rank_box(owner).contains(p));
    }
}

TEST(DecompTest, OwnerClampsOutOfDomain) {
    const GridDecomp d = grid_decomp_3d(8, Box({0, 0, 0}, {1, 1, 1}));
    EXPECT_GE(d.owner({-5, -5, -5}), 0);
    EXPECT_LT(d.owner({5, 5, 5}), 8);
}

TEST(DecompTest, PartitionConservesParticles) {
    const Box domain({0, 0, 0}, {2, 2, 2});
    const GridDecomp d = grid_decomp_3d(8, domain);
    const ParticleSet global = make_uniform_particles(domain, 10'000, 2, 31);
    const auto parts = partition_particles(global, d);
    std::size_t total = 0;
    for (const auto& p : parts) {
        total += p.count();
    }
    EXPECT_EQ(total, 10'000u);
    const auto counts = partition_counts(global, d);
    for (int r = 0; r < 8; ++r) {
        EXPECT_EQ(counts[static_cast<std::size_t>(r)],
                  parts[static_cast<std::size_t>(r)].count());
    }
}

TEST(DecompTest, MakeRankInfos) {
    const GridDecomp d = grid_decomp_3d(4, Box({0, 0, 0}, {1, 1, 1}));
    const std::vector<std::uint64_t> counts{1, 2, 3, 4};
    const auto infos = make_rank_infos(d, counts);
    ASSERT_EQ(infos.size(), 4u);
    for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(infos[static_cast<std::size_t>(r)].num_particles,
                  counts[static_cast<std::size_t>(r)]);
        EXPECT_EQ(infos[static_cast<std::size_t>(r)].bounds, d.rank_box(r));
    }
}

// ---- uniform ---------------------------------------------------------------

TEST(UniformTest, CountSchemaBounds) {
    const Box box({1, 1, 1}, {2, 3, 4});
    const ParticleSet set = make_uniform_particles(box, 5'000, 14, 1);
    EXPECT_EQ(set.count(), 5'000u);
    EXPECT_EQ(set.num_attrs(), 14u);
    EXPECT_EQ(set.bytes_per_particle(), 12u + 14u * 8u);  // paper: 4.06 MB / 32k
    EXPECT_TRUE(box.contains_box(set.bounds()));
}

TEST(UniformTest, Deterministic) {
    const Box box({0, 0, 0}, {1, 1, 1});
    const ParticleSet a = make_uniform_particles(box, 1'000, 3, 9);
    const ParticleSet b = make_uniform_particles(box, 1'000, 3, 9);
    for (std::size_t i = 0; i < 1'000; ++i) {
        EXPECT_EQ(a.position(i), b.position(i));
        EXPECT_EQ(a.attr(2)[i], b.attr(2)[i]);
    }
}

TEST(UniformTest, AttrsAreSpatiallyCorrelated) {
    // Particles close in space should have closer attribute values than
    // random pairs (the property bitmap filtering exploits).
    const Box box({0, 0, 0}, {1, 1, 1});
    const ParticleSet set = make_uniform_particles(box, 4'000, 1, 3);
    // Compare attr values of points in a thin slab vs the global spread.
    std::vector<double> slab;
    std::vector<double> all;
    for (std::size_t i = 0; i < set.count(); ++i) {
        all.push_back(set.attr(0)[i]);
        const Vec3 p = set.position(i);
        if (p.x < 0.1f && p.y < 0.1f && p.z < 0.1f) {
            slab.push_back(set.attr(0)[i]);
        }
    }
    ASSERT_GT(slab.size(), 2u);
    EXPECT_LT(stddev(slab), 0.5 * stddev(all));
}

// ---- boiler ----------------------------------------------------------------

TEST(BoilerTest, ParticleCountGrowsLinearly) {
    BoilerConfig config;
    EXPECT_EQ(config.particles_at(config.t_start), config.particles_at_start);
    EXPECT_EQ(config.particles_at(config.t_end), config.particles_at_end);
    const auto mid = config.particles_at((config.t_start + config.t_end) / 2);
    const auto expected = (config.particles_at_start + config.particles_at_end) / 2;
    EXPECT_NEAR(static_cast<double>(mid), static_cast<double>(expected),
                static_cast<double>(expected) * 0.01);
    // 9x growth over the series, as in the paper (4.6M -> 41.5M).
    EXPECT_NEAR(static_cast<double>(config.particles_at_end) /
                    static_cast<double>(config.particles_at_start),
                41.5 / 4.6, 0.5);
}

TEST(BoilerTest, GeneratesInsideDomainWithSchema) {
    BoilerConfig config;
    config.particles_at_start = 2'000;
    config.particles_at_end = 18'000;
    const ParticleSet set = make_boiler_particles(config, 1500);
    EXPECT_EQ(set.num_attrs(), 7u);  // paper: 7 double attributes
    EXPECT_TRUE(config.domain.contains_box(set.bounds()));
    EXPECT_EQ(set.count(), config.particles_at(1500));
}

TEST(BoilerTest, DistributionIsNonuniform) {
    BoilerConfig config;
    config.particles_at_start = 5'000;
    config.particles_at_end = 45'000;
    const ParticleSet set = make_boiler_particles(config, 2500);
    const GridDecomp d = grid_decomp_3d(64, config.domain);
    const auto counts = partition_counts(set, d);
    const auto max_count = *std::max_element(counts.begin(), counts.end());
    const double mean_count =
        static_cast<double>(set.count()) / static_cast<double>(d.nranks());
    EXPECT_GT(static_cast<double>(max_count), 3.0 * mean_count)
        << "boiler should be strongly clustered";
}

TEST(BoilerTest, DistributionEvolvesOverTime) {
    BoilerConfig config;
    config.particles_at_start = 4'000;
    config.particles_at_end = 36'000;
    const BoilerCounts early = boiler_rank_counts(config, 1000, 32);
    const BoilerCounts late = boiler_rank_counts(config, 4000, 32);
    EXPECT_LT(std::accumulate(early.rank_counts.begin(), early.rank_counts.end(), 0ull),
              std::accumulate(late.rank_counts.begin(), late.rank_counts.end(), 0ull));
    EXPECT_FALSE(early.data_bounds.empty());
}

TEST(BoilerTest, Deterministic) {
    BoilerConfig config;
    config.particles_at_start = 1'000;
    config.particles_at_end = 9'000;
    const ParticleSet a = make_boiler_particles(config, 2000);
    const ParticleSet b = make_boiler_particles(config, 2000);
    ASSERT_EQ(a.count(), b.count());
    for (std::size_t i = 0; i < a.count(); i += 97) {
        EXPECT_EQ(a.position(i), b.position(i));
        EXPECT_EQ(a.attr(0)[i], b.attr(0)[i]);
    }
}

// ---- dam break -------------------------------------------------------------

TEST(DamBreakTest, FixedParticleCount) {
    DamBreakConfig config;
    config.num_particles = 8'000;
    for (int t : {0, 1000, 2500, 4001}) {
        const ParticleSet set = make_dambreak_particles(config, t);
        EXPECT_EQ(set.count(), 8'000u);
        EXPECT_EQ(set.num_attrs(), 4u);  // paper: 4 double attributes
        EXPECT_TRUE(config.domain.contains_box(set.bounds()));
    }
}

TEST(DamBreakTest, StartsAsColumn) {
    DamBreakConfig config;
    config.num_particles = 5'000;
    const ParticleSet set = make_dambreak_particles(config, 0);
    const Box b = set.bounds();
    EXPECT_LE(b.upper.x, config.column_width * 1.05f);
    EXPECT_LE(b.upper.z, config.column_height * 1.05f);
}

TEST(DamBreakTest, CollapsesAndSpreads) {
    DamBreakConfig config;
    config.num_particles = 5'000;
    const Box early = make_dambreak_particles(config, 0).bounds();
    const Box late = make_dambreak_particles(config, 3000).bounds();
    EXPECT_GT(late.upper.x, 2.f * early.upper.x);  // front ran along the floor
    // Column height collapsed: the bulk of particles sit much lower.
    const ParticleSet late_set = make_dambreak_particles(config, 4001);
    double mean_z = 0;
    for (std::size_t i = 0; i < late_set.count(); ++i) {
        mean_z += late_set.position(i).z;
    }
    mean_z /= static_cast<double>(late_set.count());
    EXPECT_LT(mean_z, 0.4 * config.column_height);
}

TEST(DamBreakTest, RankLoadMigratesOver2dGrid) {
    DamBreakConfig config;
    config.num_particles = 20'000;
    const auto c0 = dambreak_rank_counts(config, 0, 16);
    const auto c1 = dambreak_rank_counts(config, 3000, 16);
    EXPECT_EQ(std::accumulate(c0.begin(), c0.end(), 0ull), 20'000ull);
    EXPECT_EQ(std::accumulate(c1.begin(), c1.end(), 0ull), 20'000ull);
    // At t=0 some ranks (far from the column) are empty; later they fill.
    const int empty0 = static_cast<int>(std::count(c0.begin(), c0.end(), 0ull));
    const int empty1 = static_cast<int>(std::count(c1.begin(), c1.end(), 0ull));
    EXPECT_GT(empty0, 0);
    EXPECT_LT(empty1, empty0);
}

// ---- mixtures --------------------------------------------------------------

TEST(MixtureTest, CountAndBounds) {
    const Box domain({0, 0, 0}, {1, 1, 1});
    const auto blobs = make_random_blobs(domain, 3, 5);
    const ParticleSet set = make_mixture_particles(domain, blobs, 3'000, 2, 6);
    EXPECT_EQ(set.count(), 3'000u);
    EXPECT_TRUE(domain.contains_box(set.bounds()));
}

TEST(MixtureTest, ClustersAroundBlobCenters) {
    const Box domain({0, 0, 0}, {1, 1, 1});
    const std::vector<GaussianBlob> blobs{{{0.2f, 0.2f, 0.2f}, 0.02f, 1.0}};
    const ParticleSet set = make_mixture_particles(domain, blobs, 2'000, 1, 7);
    int near = 0;
    for (std::size_t i = 0; i < set.count(); ++i) {
        const Vec3 d = set.position(i) - Vec3{0.2f, 0.2f, 0.2f};
        if (std::abs(d.x) < 0.1f && std::abs(d.y) < 0.1f && std::abs(d.z) < 0.1f) {
            ++near;
        }
    }
    EXPECT_GT(near, 1'900);
}

TEST(MixtureTest, WeightsControlShare) {
    const Box domain({0, 0, 0}, {1, 1, 1});
    const std::vector<GaussianBlob> blobs{{{0.2f, 0.5f, 0.5f}, 0.01f, 9.0},
                                          {{0.8f, 0.5f, 0.5f}, 0.01f, 1.0}};
    const ParticleSet set = make_mixture_particles(domain, blobs, 10'000, 1, 8);
    int left = 0;
    for (std::size_t i = 0; i < set.count(); ++i) {
        left += set.position(i).x < 0.5f;
    }
    EXPECT_NEAR(left, 9'000, 300);
}

}  // namespace
}  // namespace bat
