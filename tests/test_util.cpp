// Unit tests for the util layer: geometry, Morton codes, RNG, statistics,
// and buffer serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/buffer.hpp"
#include "util/check.hpp"
#include "util/morton.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/vec3.hpp"

namespace bat {
namespace {

// ---- Box ---------------------------------------------------------------

TEST(BoxTest, DefaultIsEmpty) {
    Box b;
    EXPECT_TRUE(b.empty());
}

TEST(BoxTest, ExtendPointMakesNonEmpty) {
    Box b;
    b.extend({1, 2, 3});
    EXPECT_FALSE(b.empty());
    EXPECT_EQ(b.lower, Vec3(1, 2, 3));
    EXPECT_EQ(b.upper, Vec3(1, 2, 3));
}

TEST(BoxTest, ExtendGrowsBothCorners) {
    Box b;
    b.extend({1, 5, 3});
    b.extend({4, 2, 6});
    EXPECT_EQ(b.lower, Vec3(1, 2, 3));
    EXPECT_EQ(b.upper, Vec3(4, 5, 6));
}

TEST(BoxTest, ExtendBoxUnions) {
    Box a({0, 0, 0}, {1, 1, 1});
    Box b({2, -1, 0.5f}, {3, 0.5f, 2});
    a.extend(b);
    EXPECT_EQ(a.lower, Vec3(0, -1, 0));
    EXPECT_EQ(a.upper, Vec3(3, 1, 2));
}

TEST(BoxTest, LongestAxis) {
    EXPECT_EQ(Box({0, 0, 0}, {3, 1, 1}).longest_axis(), 0);
    EXPECT_EQ(Box({0, 0, 0}, {1, 3, 1}).longest_axis(), 1);
    EXPECT_EQ(Box({0, 0, 0}, {1, 1, 3}).longest_axis(), 2);
}

TEST(BoxTest, ContainsIsInclusive) {
    const Box b({0, 0, 0}, {1, 1, 1});
    EXPECT_TRUE(b.contains({0, 0, 0}));
    EXPECT_TRUE(b.contains({1, 1, 1}));
    EXPECT_TRUE(b.contains({0.5f, 0.5f, 0.5f}));
    EXPECT_FALSE(b.contains({1.001f, 0.5f, 0.5f}));
    EXPECT_FALSE(b.contains({0.5f, -0.001f, 0.5f}));
}

TEST(BoxTest, OverlapsSharedFace) {
    const Box a({0, 0, 0}, {1, 1, 1});
    const Box b({1, 0, 0}, {2, 1, 1});
    EXPECT_TRUE(a.overlaps(b));
    const Box c({1.01f, 0, 0}, {2, 1, 1});
    EXPECT_FALSE(a.overlaps(c));
}

TEST(BoxTest, ContainsBox) {
    const Box outer({0, 0, 0}, {4, 4, 4});
    EXPECT_TRUE(outer.contains_box(Box({1, 1, 1}, {2, 2, 2})));
    EXPECT_TRUE(outer.contains_box(outer));
    EXPECT_FALSE(outer.contains_box(Box({1, 1, 1}, {5, 2, 2})));
}

TEST(BoxTest, IntersectionOfDisjointIsEmpty) {
    const Box a({0, 0, 0}, {1, 1, 1});
    const Box b({2, 2, 2}, {3, 3, 3});
    EXPECT_TRUE(intersection(a, b).empty());
    EXPECT_FALSE(intersection(a, Box({0.5f, 0.5f, 0.5f}, {2, 2, 2})).empty());
}

TEST(BoxTest, CenterAndExtent) {
    const Box b({0, 2, 4}, {2, 6, 10});
    EXPECT_EQ(b.center(), Vec3(1, 4, 7));
    EXPECT_EQ(b.extent(), Vec3(2, 4, 6));
}

// ---- Morton ------------------------------------------------------------

TEST(MortonTest, EncodeDecodeZero) {
    std::uint32_t x, y, z;
    morton_decode(morton_encode(0, 0, 0), x, y, z);
    EXPECT_EQ(x, 0u);
    EXPECT_EQ(y, 0u);
    EXPECT_EQ(z, 0u);
}

TEST(MortonTest, EncodeDecodeMax) {
    const std::uint32_t m = (1u << kMortonBitsPerAxis) - 1;
    std::uint32_t x, y, z;
    morton_decode(morton_encode(m, m, m), x, y, z);
    EXPECT_EQ(x, m);
    EXPECT_EQ(y, m);
    EXPECT_EQ(z, m);
}

TEST(MortonTest, XIsMostSignificant) {
    // The code for (1,0,0) must exceed (0,1,1) for same-magnitude bits.
    EXPECT_GT(morton_encode(1, 0, 0), morton_encode(0, 1, 1));
    EXPECT_GT(morton_encode(0, 1, 0), morton_encode(0, 0, 1));
}

TEST(MortonTest, SingleBitPositions) {
    // Bit k of z lands at code bit 3k, y at 3k+1, x at 3k+2.
    for (int k = 0; k < kMortonBitsPerAxis; ++k) {
        EXPECT_EQ(morton_encode(1u << k, 0, 0), std::uint64_t{1} << (3 * k + 2));
        EXPECT_EQ(morton_encode(0, 1u << k, 0), std::uint64_t{1} << (3 * k + 1));
        EXPECT_EQ(morton_encode(0, 0, 1u << k), std::uint64_t{1} << (3 * k));
    }
}

TEST(MortonTest, BitAxisMatchesEncoding) {
    EXPECT_EQ(morton_bit_axis(0), 2);  // LSB is a z bit
    EXPECT_EQ(morton_bit_axis(1), 1);
    EXPECT_EQ(morton_bit_axis(2), 0);
    EXPECT_EQ(morton_bit_axis(62), 0);  // MSB is an x bit
}

class MortonRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MortonRoundTrip, RoundTrips) {
    Pcg32 rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t x = rng.next_u32() & ((1u << kMortonBitsPerAxis) - 1);
        const std::uint32_t y = rng.next_u32() & ((1u << kMortonBitsPerAxis) - 1);
        const std::uint32_t z = rng.next_u32() & ((1u << kMortonBitsPerAxis) - 1);
        std::uint32_t rx, ry, rz;
        morton_decode(morton_encode(x, y, z), rx, ry, rz);
        EXPECT_EQ(x, rx);
        EXPECT_EQ(y, ry);
        EXPECT_EQ(z, rz);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MortonRoundTrip, ::testing::Values(1, 2, 3, 42, 1337));

TEST(MortonTest, PositionEncodingOrdersByLocality) {
    const Box bounds({0, 0, 0}, {1, 1, 1});
    // Nearby points should share long prefixes more often than far ones.
    const auto a = morton_encode_position({0.1f, 0.1f, 0.1f}, bounds);
    const auto b = morton_encode_position({0.1001f, 0.1f, 0.1f}, bounds);
    const auto c = morton_encode_position({0.9f, 0.9f, 0.9f}, bounds);
    EXPECT_LT(a ^ b, a ^ c);
}

TEST(MortonTest, PositionOnUpperBoundaryClamps) {
    const Box bounds({0, 0, 0}, {1, 1, 1});
    const auto code = morton_encode_position({1.f, 1.f, 1.f}, bounds);
    std::uint32_t x, y, z;
    morton_decode(code, x, y, z);
    const std::uint32_t m = (1u << kMortonBitsPerAxis) - 1;
    EXPECT_EQ(x, m);
    EXPECT_EQ(y, m);
    EXPECT_EQ(z, m);
}

TEST(MortonTest, DegenerateAxisMapsToZero) {
    const Box bounds({0, 0, 0}, {1, 0, 1});  // flat in y
    const auto code = morton_encode_position({0.5f, 0.f, 0.5f}, bounds);
    std::uint32_t x, y, z;
    morton_decode(code, x, y, z);
    EXPECT_EQ(y, 0u);
}

// ---- RNG ---------------------------------------------------------------

TEST(RngTest, Deterministic) {
    Pcg32 a(99), b(99);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u32(), b.next_u32());
    }
}

TEST(RngTest, SeedsDiffer) {
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        same += a.next_u32() == b.next_u32();
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, FloatInUnitInterval) {
    Pcg32 rng(5);
    for (int i = 0; i < 1000; ++i) {
        const float f = rng.next_float();
        EXPECT_GE(f, 0.f);
        EXPECT_LT(f, 1.f);
    }
}

TEST(RngTest, DoubleInUnitInterval) {
    Pcg32 rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, BoundedStaysInBounds) {
    Pcg32 rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_bounded(17), 17u);
    }
}

TEST(RngTest, BoundedCoversRange) {
    Pcg32 rng(7);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 4000; ++i) {
        ++hits[rng.next_bounded(8)];
    }
    for (int h : hits) {
        EXPECT_GT(h, 300);  // roughly uniform
    }
}

TEST(RngTest, UniformRange) {
    Pcg32 rng(11);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.uniform(-2.f, 3.f);
        EXPECT_GE(v, -2.f);
        EXPECT_LT(v, 3.f);
    }
}

TEST(RngTest, NormalHasRoughlyUnitVariance) {
    Pcg32 rng(13);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.next_normal();
        sum += v;
        sum2 += v * v;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, MixSeedSpreads) {
    EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
    EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
}

// ---- stats ---------------------------------------------------------------

TEST(StatsTest, MeanAndStddev) {
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(StatsTest, GeomeanOfPowers) {
    const std::vector<double> xs{1, 4, 16};
    EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(StatsTest, GeomeanRejectsNonPositive) {
    const std::vector<double> xs{1, 0, 2};
    EXPECT_THROW(geomean(xs), Error);
}

TEST(StatsTest, MedianOddEven) {
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(StatsTest, Percentile) {
    std::vector<double> xs;
    for (int i = 0; i <= 100; ++i) {
        xs.push_back(i);
    }
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 100.0);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    RunningStats rs;
    for (double x : xs) {
        rs.add(x);
    }
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_NEAR(rs.stddev(), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(StatsTest, MergeMatchesConcatenation) {
    // Parallel Welford (Chan et al.): merging two partial accumulators must
    // agree with accumulating the concatenated sample stream.
    std::vector<double> xs;
    std::uint64_t state = 99;
    for (int i = 0; i < 1000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        xs.push_back(static_cast<double>(state % 100000) / 3.0 - 5000.0);
    }
    for (const std::size_t split : {std::size_t{0}, std::size_t{1}, xs.size() / 3,
                                    xs.size() - 1, xs.size()}) {
        RunningStats a;
        RunningStats b;
        RunningStats whole;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            (i < split ? a : b).add(xs[i]);
            whole.add(xs[i]);
        }
        a.merge(b);
        EXPECT_EQ(a.count(), whole.count());
        EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
        EXPECT_NEAR(a.stddev(), whole.stddev(), 1e-9);
        EXPECT_DOUBLE_EQ(a.min(), whole.min());
        EXPECT_DOUBLE_EQ(a.max(), whole.max());
    }
}

TEST(StatsTest, MergeWithEmptyIsIdentity) {
    RunningStats a;
    a.add(1.0);
    a.add(3.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
    EXPECT_DOUBLE_EQ(b.min(), 1.0);
    EXPECT_DOUBLE_EQ(b.max(), 3.0);
}

TEST(StatsTest, EmptyInputs) {
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    RunningStats rs;
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

// ---- buffer ----------------------------------------------------------------

TEST(BufferTest, PodRoundTrip) {
    BufferWriter w;
    w.write(std::uint32_t{0xdeadbeef});
    w.write(3.5);
    w.write(std::int16_t{-7});
    BufferReader r(w.bytes());
    EXPECT_EQ(r.read<std::uint32_t>(), 0xdeadbeefu);
    EXPECT_DOUBLE_EQ(r.read<double>(), 3.5);
    EXPECT_EQ(r.read<std::int16_t>(), -7);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufferTest, StringRoundTrip) {
    BufferWriter w;
    w.write_string("hello");
    w.write_string("");
    w.write_string("wörld");
    BufferReader r(w.bytes());
    EXPECT_EQ(r.read_string(), "hello");
    EXPECT_EQ(r.read_string(), "");
    EXPECT_EQ(r.read_string(), "wörld");
}

TEST(BufferTest, SpanRoundTrip) {
    const std::vector<double> xs{1.5, 2.5, -3.0};
    BufferWriter w;
    w.write_span(std::span<const double>(xs));
    std::vector<double> out(3);
    BufferReader r(w.bytes());
    r.read_into(std::span<double>(out));
    EXPECT_EQ(out, xs);
}

TEST(BufferTest, AlignToPads) {
    BufferWriter w;
    w.write(std::uint8_t{1});
    w.align_to(8);
    EXPECT_EQ(w.size(), 8u);
    w.align_to(8);
    EXPECT_EQ(w.size(), 8u);  // already aligned: no change
}

TEST(BufferTest, PatchOverwrites) {
    BufferWriter w;
    w.write(std::uint64_t{0});
    w.write(std::uint32_t{7});
    w.patch(0, std::uint64_t{42});
    BufferReader r(w.bytes());
    EXPECT_EQ(r.read<std::uint64_t>(), 42u);
    EXPECT_EQ(r.read<std::uint32_t>(), 7u);
}

TEST(BufferTest, UnderrunThrows) {
    BufferWriter w;
    w.write(std::uint16_t{1});
    BufferReader r(w.bytes());
    EXPECT_THROW(r.read<std::uint64_t>(), Error);
}

TEST(BufferTest, SeekAndSkip) {
    BufferWriter w;
    w.write(std::uint32_t{1});
    w.write(std::uint32_t{2});
    w.write(std::uint32_t{3});
    BufferReader r(w.bytes());
    r.skip(4);
    EXPECT_EQ(r.read<std::uint32_t>(), 2u);
    r.seek(0);
    EXPECT_EQ(r.read<std::uint32_t>(), 1u);
    EXPECT_THROW(r.seek(100), Error);
}

// ---- check ------------------------------------------------------------------

TEST(CheckTest, PassingCheckIsSilent) {
    EXPECT_NO_THROW(BAT_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsWithContext) {
    try {
        BAT_CHECK_MSG(false, "context " << 42);
        FAIL() << "should have thrown";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
    }
}

}  // namespace
}  // namespace bat
