// Tests for the TBB-replacement task pool: fork/join, nesting, exception
// propagation, parallel_for coverage, and the concurrency-invariant layer
// (lock-order checking, self-wait detection, re-entrancy limits).

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>

#include "util/check.hpp"
#include "util/lock_order.hpp"
#include "util/thread_pool.hpp"

namespace bat {
namespace {

class ThreadPoolSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadPoolSizes, RunsEveryTask) {
    ThreadPool pool(GetParam());
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 100; ++i) {
        group.run([&count] { count.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST_P(ThreadPoolSizes, NestedTasksComplete) {
    ThreadPool pool(GetParam());
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
        group.run([&pool, &count] {
            TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j) {
                inner.run([&count] { count.fetch_add(1); });
            }
            inner.wait();
        });
    }
    group.wait();
    EXPECT_EQ(count.load(), 64);
}

TEST_P(ThreadPoolSizes, RecursiveSpawnFromTask) {
    ThreadPool pool(GetParam());
    std::atomic<int> count{0};
    TaskGroup group(pool);
    // A task that spawns into the same group, fork/join style.
    std::function<void(int)> recurse = [&](int depth) {
        count.fetch_add(1);
        if (depth < 5) {
            group.run([&recurse, depth] { recurse(depth + 1); });
            group.run([&recurse, depth] { recurse(depth + 1); });
        }
    };
    group.run([&recurse] { recurse(0); });
    group.wait();
    EXPECT_EQ(count.load(), 63);  // full binary tree of depth 5
}

TEST_P(ThreadPoolSizes, ExceptionPropagatesFromWait) {
    ThreadPool pool(GetParam());
    TaskGroup group(pool);
    for (int i = 0; i < 10; ++i) {
        group.run([i] {
            if (i == 7) {
                throw Error("task failed");
            }
        });
    }
    EXPECT_THROW(group.wait(), Error);
}

TEST_P(ThreadPoolSizes, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(GetParam());
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(),
                      [&hits](std::size_t i) { hits[i].fetch_add(1); }, 64);
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST_P(ThreadPoolSizes, ParallelForEmptyRange) {
    ThreadPool pool(GetParam());
    int calls = 0;
    pool.parallel_for(5, 5, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST_P(ThreadPoolSizes, ParallelForPartialRange) {
    ThreadPool pool(GetParam());
    std::atomic<long> sum{0};
    pool.parallel_for(10, 20, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); },
                      3);
    EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ThreadPoolSizes, ::testing::Values(0, 1, 2, 4));

TEST(ThreadPoolTest, DefaultConcurrencyNonNegative) {
    // On a 1-core machine this is 0 (inline execution); just exercise it.
    ThreadPool pool;
    std::atomic<int> count{0};
    TaskGroup group(pool);
    group.run([&count] { count.fetch_add(1); });
    group.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
    std::atomic<int> count{0};
    ThreadPool::global().parallel_for(0, 10, [&count](std::size_t) { count.fetch_add(1); },
                                      2);
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, WaitCanBeCalledTwice) {
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.run([] {});
    group.wait();
    EXPECT_NO_THROW(group.wait());
}

// ---- concurrency-invariant layer ------------------------------------------

// Death tests fork the process; skip them under sanitizers, where forked
// children interact badly with the runtime (the invariants themselves are
// still exercised by the non-death tests and the default-build CI job).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define BAT_SKIP_DEATH_TESTS() GTEST_SKIP() << "death tests disabled under sanitizers"
#else
#define BAT_SKIP_DEATH_TESTS() \
    do {                       \
    } while (false)
#endif

TEST(LockOrderTest, ConsistentOrderIsAccepted) {
    ASSERT_TRUE(lockdbg::enabled());
    CheckedMutex a("test.order.a");
    CheckedMutex b("test.order.b");
    for (int i = 0; i < 3; ++i) {
        std::lock_guard<CheckedMutex> la(a);
        std::lock_guard<CheckedMutex> lb(b);
    }
    SUCCEED();
}

TEST(LockOrderDeathTest, AbbaViolationAborts) {
    BAT_SKIP_DEATH_TESTS();
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_TRUE(lockdbg::enabled());
    EXPECT_DEATH(
        {
            CheckedMutex a("test.abba.a");
            CheckedMutex b("test.abba.b");
            {
                std::lock_guard<CheckedMutex> la(a);
                std::lock_guard<CheckedMutex> lb(b);  // establishes a -> b
            }
            std::lock_guard<CheckedMutex> lb(b);
            std::lock_guard<CheckedMutex> la(a);  // b -> a: cycle
        },
        "lock order violation");
}

TEST(LockOrderDeathTest, SameClassNestingAborts) {
    BAT_SKIP_DEATH_TESTS();
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            CheckedMutex a("test.same.class");
            CheckedMutex b("test.same.class");
            std::lock_guard<CheckedMutex> la(a);
            std::lock_guard<CheckedMutex> lb(b);
        },
        "lock order violation");
}

TEST(LockOrderDeathTest, SelfWaitFromOwnTaskAborts) {
    BAT_SKIP_DEATH_TESTS();
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ThreadPool pool(0);  // inline execution: deterministic
            TaskGroup group(pool);
            group.run([&group] { group.wait(); });
            group.wait();
        },
        "own tasks");
}

TEST(LockOrderTest, ViolationCheckCanBeDisabled) {
    ASSERT_TRUE(lockdbg::enabled());
    lockdbg::set_enabled(false);
    {
        // Same-class nesting, normally fatal; silent while disabled.
        CheckedMutex a("test.disabled.class");
        CheckedMutex b("test.disabled.class");
        std::lock_guard<CheckedMutex> la(a);
        std::lock_guard<CheckedMutex> lb(b);
    }
    lockdbg::set_enabled(true);
    SUCCEED();
}

TEST(ThreadPoolTest, ParallelForReentrancyDepthIsBounded) {
    ThreadPool pool(0);  // inline: recursion stays on this thread
    std::function<void(int)> recurse = [&](int depth) {
        pool.parallel_for(0, 1, [&](std::size_t) { recurse(depth + 1); }, 1);
    };
    EXPECT_THROW(recurse(0), Error);
}

TEST(ThreadPoolTest, ModeratelyNestedParallelForIsFine) {
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.parallel_for(
        0, 4,
        [&](std::size_t) {
            pool.parallel_for(0, 4, [&](std::size_t) { count.fetch_add(1); }, 1);
        },
        1);
    EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace bat
