// Tests for the TBB-replacement task pool: fork/join, nesting, exception
// propagation, and parallel_for coverage.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace bat {
namespace {

class ThreadPoolSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadPoolSizes, RunsEveryTask) {
    ThreadPool pool(GetParam());
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 100; ++i) {
        group.run([&count] { count.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST_P(ThreadPoolSizes, NestedTasksComplete) {
    ThreadPool pool(GetParam());
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
        group.run([&pool, &count] {
            TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j) {
                inner.run([&count] { count.fetch_add(1); });
            }
            inner.wait();
        });
    }
    group.wait();
    EXPECT_EQ(count.load(), 64);
}

TEST_P(ThreadPoolSizes, RecursiveSpawnFromTask) {
    ThreadPool pool(GetParam());
    std::atomic<int> count{0};
    TaskGroup group(pool);
    // A task that spawns into the same group, fork/join style.
    std::function<void(int)> recurse = [&](int depth) {
        count.fetch_add(1);
        if (depth < 5) {
            group.run([&recurse, depth] { recurse(depth + 1); });
            group.run([&recurse, depth] { recurse(depth + 1); });
        }
    };
    group.run([&recurse] { recurse(0); });
    group.wait();
    EXPECT_EQ(count.load(), 63);  // full binary tree of depth 5
}

TEST_P(ThreadPoolSizes, ExceptionPropagatesFromWait) {
    ThreadPool pool(GetParam());
    TaskGroup group(pool);
    for (int i = 0; i < 10; ++i) {
        group.run([i] {
            if (i == 7) {
                throw Error("task failed");
            }
        });
    }
    EXPECT_THROW(group.wait(), Error);
}

TEST_P(ThreadPoolSizes, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(GetParam());
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(),
                      [&hits](std::size_t i) { hits[i].fetch_add(1); }, 64);
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST_P(ThreadPoolSizes, ParallelForEmptyRange) {
    ThreadPool pool(GetParam());
    int calls = 0;
    pool.parallel_for(5, 5, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST_P(ThreadPoolSizes, ParallelForPartialRange) {
    ThreadPool pool(GetParam());
    std::atomic<long> sum{0};
    pool.parallel_for(10, 20, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); },
                      3);
    EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ThreadPoolSizes, ::testing::Values(0, 1, 2, 4));

TEST(ThreadPoolTest, DefaultConcurrencyNonNegative) {
    // On a 1-core machine this is 0 (inline execution); just exercise it.
    ThreadPool pool;
    std::atomic<int> count{0};
    TaskGroup group(pool);
    group.run([&count] { count.fetch_add(1); });
    group.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
    std::atomic<int> count{0};
    ThreadPool::global().parallel_for(0, 10, [&count](std::size_t) { count.fetch_add(1); },
                                      2);
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, WaitCanBeCalledTwice) {
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.run([] {});
    group.wait();
    EXPECT_NO_THROW(group.wait());
}

}  // namespace
}  // namespace bat
