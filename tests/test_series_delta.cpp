// Tests for incremental (delta) series writes: bit-exact reads through
// delta chains versus full rewrites on every timestep — via Dataset, the
// collective read_particles, DataService query rounds, and the
// LeafFileCache — plus non-vacuity of the delta path (plan reuse, clean
// treelets, keyframes) and drift-forced replans.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>

#include "core/bat_file.hpp"
#include "core/dataset.hpp"
#include "core/metadata.hpp"
#include "io/data_service.hpp"
#include "io/leaf_cache.hpp"
#include "io/reader.hpp"
#include "io/series.hpp"
#include "test_helpers.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});
constexpr int kRanks = 4;
constexpr int kSteps = 10;  // keyframes at 0 and 8 (default interval 8)

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Step `s` of a slowly-evolving series: the base population with the
/// particles inside a small interior hot box re-jittered (clamped to the
/// box, so global bounds and attribute ranges stay pinned by the rest).
ParticleSet make_step(const ParticleSet& base, int s) {
    ParticleSet global = base;
    if (s == 0) {
        return global;
    }
    // Off-center on purpose: a box straddling the domain center would put
    // hot particles in every Morton octant and no leaf would ever be fully
    // clean (defeating the whole-file reuse assertions below).
    const Box hot({0.2f, 0.2f, 0.2f}, {0.6f, 0.6f, 0.6f});
    auto cl = [](float v, float a, float b) { return v < a ? a : (v > b ? b : v); };
    for (std::size_t i = 0; i < global.count(); ++i) {
        Vec3 p = global.position(i);
        if (!hot.contains(p)) {
            continue;
        }
        const std::uint64_t h =
            splitmix64(static_cast<std::uint64_t>(s) << 32 | static_cast<std::uint64_t>(i));
        auto jit = [&](std::uint64_t w) {
            return 0.02f * (2.0f * static_cast<float>(w >> 40) /
                                static_cast<float>(1u << 24) -
                            1.0f);
        };
        p.x = cl(p.x + jit(h), hot.lower.x, hot.upper.x);
        p.y = cl(p.y + jit(splitmix64(h)), hot.lower.y, hot.upper.y);
        p.z = cl(p.z + jit(splitmix64(h + 1)), hot.lower.z, hot.upper.z);
        global.set_position(i, p);
    }
    return global;
}

WriterConfig series_config(const std::filesystem::path& dir, const std::string& name) {
    WriterConfig config;
    config.tree.target_file_size = 32 << 10;
    config.bat.target_treelet_particles = 256;  // several treelets per leaf
    config.directory = dir;
    config.basename = name;
    return config;
}

/// Both series written over the same steps: `full_meta[s]` from plain
/// per-step write_particles (full rewrites), the delta series through
/// SeriesWriter. Also captures the delta pass's per-step WriteResults
/// (slot per (step, rank)).
struct WrittenSeries {
    testing::TempDir dir;
    ParticleSet base;
    std::filesystem::path manifest;
    std::vector<std::filesystem::path> full_meta;
    std::vector<std::vector<WriteResult>> delta_results;  // [step][rank]

    WrittenSeries() {
        base = make_uniform_particles(kDomain, 12'000, 2, 77);
        const GridDecomp decomp = grid_decomp_3d(kRanks, kDomain);
        full_meta.resize(kSteps);
        delta_results.assign(kSteps, std::vector<WriteResult>(kRanks));
        std::mutex mutex;
        vmpi::Runtime::run(kRanks, [&](vmpi::Comm& comm) {
            const int r = comm.rank();
            SeriesWriter writer(series_config(dir.path(), "delta"));
            for (int s = 0; s < kSteps; ++s) {
                const auto per_rank = partition_particles(make_step(base, s), decomp);
                WriterConfig full = series_config(dir.path(), "full_t" + std::to_string(s));
                const WriteResult fw =
                    write_particles(comm, per_rank[static_cast<std::size_t>(r)],
                                    decomp.rank_box(r), full);
                const WriteResult dw =
                    writer.write_timestep(comm, s, per_rank[static_cast<std::size_t>(r)],
                                          decomp.rank_box(r));
                std::lock_guard<std::mutex> lock(mutex);
                full_meta[static_cast<std::size_t>(s)] = fw.metadata_path;
                delta_results[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)] =
                    dw;
            }
            const auto path = writer.finalize(comm);
            if (r == 0) {
                std::lock_guard<std::mutex> lock(mutex);
                manifest = path;
            }
        });
    }
};

WrittenSeries& written() {
    static WrittenSeries* w = new WrittenSeries();
    return *w;
}

void expect_bit_exact(const ParticleSet& a, const ParticleSet& b) {
    ASSERT_EQ(a.count(), b.count());
    ASSERT_EQ(a.num_attrs(), b.num_attrs());
    const auto pa = a.positions();
    const auto pb = b.positions();
    EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin()));
    for (std::size_t at = 0; at < a.num_attrs(); ++at) {
        const auto va = a.attr(at);
        const auto vb = b.attr(at);
        EXPECT_TRUE(std::equal(va.begin(), va.end(), vb.begin()));
    }
}

TEST(SeriesDeltaTest, DatasetReadsBitExactEveryStep) {
    WrittenSeries& w = written();
    SeriesReader reader(w.manifest);
    ASSERT_EQ(reader.num_timesteps(), static_cast<std::size_t>(kSteps));
    for (int s = 0; s < kSteps; ++s) {
        Dataset delta = reader.open_timestep(s);
        Dataset full(w.full_meta[static_cast<std::size_t>(s)]);
        expect_bit_exact(delta.collect(BatQuery{}), full.collect(BatQuery{}));
    }
}

TEST(SeriesDeltaTest, CollectiveReadsBitExactThroughLeafCache) {
    WrittenSeries& w = written();
    SeriesReader reader(w.manifest);
    const GridDecomp decomp = grid_decomp_3d(kRanks, kDomain);
    // A small cache forces evictions and re-opens mid-series, so delta
    // base files resolve through the cache's re-entrant opener repeatedly.
    LeafFileCache cache(4);
    for (int s = 0; s < kSteps; ++s) {
        const auto delta_meta =
            w.manifest.parent_path() / reader.series().timesteps[s].second;
        std::vector<ParticleSet> got_delta(kRanks);
        std::vector<ParticleSet> got_full(kRanks);
        vmpi::Runtime::run(kRanks, [&](vmpi::Comm& comm) {
            const int r = comm.rank();
            ReaderConfig rc;
            rc.cache = &cache;
            got_delta[static_cast<std::size_t>(r)] =
                read_particles(comm, delta_meta, decomp.rank_read_box(r), rc)
                    .particles;
            got_full[static_cast<std::size_t>(r)] =
                read_particles(comm, w.full_meta[static_cast<std::size_t>(s)],
                               decomp.rank_read_box(r), rc)
                    .particles;
        });
        for (int r = 0; r < kRanks; ++r) {
            expect_bit_exact(got_delta[static_cast<std::size_t>(r)],
                             got_full[static_cast<std::size_t>(r)]);
        }
    }
}

TEST(SeriesDeltaTest, DataServiceRoundsMatchFullRewrites) {
    WrittenSeries& w = written();
    SeriesReader reader(w.manifest);
    const GridDecomp decomp = grid_decomp_3d(kRanks, kDomain);
    for (const int s : {1, 7, 9}) {  // delta steps, incl. one past a keyframe
        const auto delta_meta =
            w.manifest.parent_path() / reader.series().timesteps[s].second;
        std::vector<ParticleSet> got_delta(kRanks);
        std::vector<ParticleSet> got_full(kRanks);
        vmpi::Runtime::run(kRanks, [&](vmpi::Comm& comm) {
            const int r = comm.rank();
            BatQuery query;
            query.box = decomp.rank_read_box(r);
            query.inclusive_upper = false;
            {
                DataService service(comm, delta_meta);
                got_delta[static_cast<std::size_t>(r)] = service.query_round(query);
            }
            {
                DataService service(comm, w.full_meta[static_cast<std::size_t>(s)]);
                got_full[static_cast<std::size_t>(r)] = service.query_round(query);
            }
        });
        for (int r = 0; r < kRanks; ++r) {
            expect_bit_exact(got_delta[static_cast<std::size_t>(r)],
                             got_full[static_cast<std::size_t>(r)]);
        }
    }
}

TEST(SeriesDeltaTest, PlanReuseAndDeltaHitsAreNotVacuous) {
    WrittenSeries& w = written();
    for (int s = 0; s < kSteps; ++s) {
        std::uint64_t clean = 0;
        std::uint64_t written_treelets = 0;
        for (int r = 0; r < kRanks; ++r) {
            const WriteResult& wr =
                w.delta_results[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)];
            // Step 0 has no plan to reuse; the workload never drifts, so
            // every later step must skip gather/tree_build/scatter.
            EXPECT_EQ(wr.reused_plan, s > 0) << "step " << s << " rank " << r;
            clean += wr.delta_treelets_clean;
            written_treelets += wr.delta_treelets_written;
        }
        if (s == 0 || s == 8) {
            // Keyframes write everything inline.
            EXPECT_EQ(clean, 0u) << "keyframe step " << s;
            EXPECT_GT(written_treelets, 0u);
        } else {
            // Steady steps must actually reference prior-step treelets, and
            // the jittered hot box must dirty at least one.
            EXPECT_GT(clean, 0u) << "step " << s;
            EXPECT_GT(written_treelets, 0u) << "step " << s;
        }
    }
}

TEST(SeriesDeltaTest, SteadyStepFilesReferenceKeyframes) {
    WrittenSeries& w = written();
    SeriesReader reader(w.manifest);
    const Metadata key_meta =
        Metadata::load(w.manifest.parent_path() / reader.series().timesteps[0].second);
    const Metadata steady_meta =
        Metadata::load(w.manifest.parent_path() / reader.series().timesteps[1].second);
    ASSERT_EQ(key_meta.leaves.size(), steady_meta.leaves.size());
    int delta_files = 0;
    int overridden = 0;
    for (std::size_t l = 0; l < steady_meta.leaves.size(); ++l) {
        const MetaLeaf& key_leaf = key_meta.leaves[l];
        const MetaLeaf& leaf = steady_meta.leaves[l];
        // Keyframe files are fully inline.
        EXPECT_TRUE(key_leaf.delta_bases.empty());
        BatFile key_file(w.manifest.parent_path() / key_leaf.file);
        EXPECT_TRUE(key_file.base_file_names().empty());
        if (leaf.file == key_leaf.file) {
            // Whole-leaf reuse: step 1's metadata points back at step 0's
            // file (the .batmeta back-reference).
            ++overridden;
            continue;
        }
        BatFile file(w.manifest.parent_path() / leaf.file);
        EXPECT_EQ(file.base_file_names(), leaf.delta_bases);
        if (!file.base_file_names().empty()) {
            ++delta_files;
            bool any_delta = false;
            for (std::size_t t = 0; t < file.header().num_treelets; ++t) {
                any_delta = any_delta || file.treelet_is_delta(t);
            }
            EXPECT_TRUE(any_delta) << leaf.file;
        }
    }
    // The hot box must leave most leaves untouched and dirty at least one.
    EXPECT_GT(overridden, 0);
    EXPECT_GT(delta_files, 0);
}

TEST(SeriesDeltaTest, DriftForcesReplanAndStaysCorrect) {
    testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(kRanks, kDomain);
    const ParticleSet small = make_uniform_particles(kDomain, 4'000, 2, 5);
    const ParticleSet big = make_uniform_particles(kDomain, 9'000, 2, 6);
    std::vector<WriteResult> step1(kRanks);
    std::filesystem::path manifest;
    std::mutex mutex;
    vmpi::Runtime::run(kRanks, [&](vmpi::Comm& comm) {
        const int r = comm.rank();
        SeriesWriter writer(series_config(dir.path(), "drift"));
        const auto rank0 = partition_particles(small, decomp);
        writer.write_timestep(comm, 0, rank0[static_cast<std::size_t>(r)],
                              decomp.rank_box(r));
        // >125% growth on every rank blows through max_rank_drift (0.3).
        const auto rank1 = partition_particles(big, decomp);
        const WriteResult wr = writer.write_timestep(
            comm, 1, rank1[static_cast<std::size_t>(r)], decomp.rank_box(r));
        const auto path = writer.finalize(comm);
        std::lock_guard<std::mutex> lock(mutex);
        step1[static_cast<std::size_t>(r)] = wr;
        if (r == 0) {
            manifest = path;
        }
    });
    for (int r = 0; r < kRanks; ++r) {
        EXPECT_FALSE(step1[static_cast<std::size_t>(r)].reused_plan);
        // A replan drops the per-leaf hashes, so nothing is written by
        // reference either.
        EXPECT_EQ(step1[static_cast<std::size_t>(r)].delta_treelets_clean, 0u);
    }
    SeriesReader reader(manifest);
    Dataset ds = reader.open_timestep(1);
    EXPECT_EQ(testing::particle_keys(ds.collect(BatQuery{})),
              testing::particle_keys(big));
}

}  // namespace
}  // namespace bat
