// Tests for the adaptive Aggregation Tree (paper §III-A): leaf sizing,
// balance, overfull-leaf policy, rank integrity, aggregator assignment.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/agg_tree.hpp"
#include "util/rng.hpp"

namespace bat {
namespace {

/// A uniform grid of ranks with the given per-rank particle count.
std::vector<RankInfo> grid_ranks(int nx, int ny, int nz, std::uint64_t particles) {
    std::vector<RankInfo> ranks;
    for (int z = 0; z < nz; ++z) {
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                RankInfo r;
                r.bounds = Box({float(x), float(y), float(z)},
                               {float(x + 1), float(y + 1), float(z + 1)});
                r.num_particles = particles;
                ranks.push_back(r);
            }
        }
    }
    return ranks;
}

AggTreeConfig config_for(std::uint64_t target, std::uint64_t bpp = 100) {
    AggTreeConfig c;
    c.target_file_size = target;
    c.bytes_per_particle = bpp;
    return c;
}

// Every rank appears in exactly one leaf; per-leaf counts are consistent.
void check_invariants(const Aggregation& agg, std::span<const RankInfo> ranks) {
    std::set<int> seen;
    std::uint64_t total = 0;
    for (std::size_t l = 0; l < agg.leaves.size(); ++l) {
        const AggLeaf& leaf = agg.leaves[l];
        std::uint64_t leaf_count = 0;
        for (int r : leaf.ranks) {
            EXPECT_TRUE(seen.insert(r).second) << "rank " << r << " in two leaves";
            leaf_count += ranks[static_cast<std::size_t>(r)].num_particles;
            EXPECT_TRUE(leaf.bounds.contains_box(ranks[static_cast<std::size_t>(r)].bounds));
            if (ranks[static_cast<std::size_t>(r)].num_particles > 0) {
                EXPECT_EQ(agg.rank_to_leaf[static_cast<std::size_t>(r)],
                          static_cast<int>(l));
            }
        }
        EXPECT_EQ(leaf.num_particles, leaf_count);
        EXPECT_GT(leaf.num_particles, 0u) << "empty leaves must be pruned";
        total += leaf_count;
    }
    std::uint64_t expected = 0;
    for (const RankInfo& r : ranks) {
        expected += r.num_particles;
    }
    EXPECT_EQ(total, expected);
}

TEST(AggTreeTest, SingleRankSingleLeaf) {
    const std::vector<RankInfo> ranks = grid_ranks(1, 1, 1, 1000);
    const Aggregation agg = build_agg_tree(ranks, config_for(1));
    ASSERT_EQ(agg.leaves.size(), 1u);
    EXPECT_EQ(agg.leaves[0].num_particles, 1000u);
    check_invariants(agg, ranks);
}

TEST(AggTreeTest, EverythingFitsOneLeaf) {
    const std::vector<RankInfo> ranks = grid_ranks(4, 4, 1, 10);
    // 16 ranks * 10 particles * 100 B = 16 kB < 1 MB target.
    const Aggregation agg = build_agg_tree(ranks, config_for(1 << 20));
    EXPECT_EQ(agg.leaves.size(), 1u);
    check_invariants(agg, ranks);
}

TEST(AggTreeTest, UniformGridSplitsEvenly) {
    const std::vector<RankInfo> ranks = grid_ranks(8, 8, 1, 1000);
    // 64 ranks * 100 kB = 6.4 MB; 800 kB target -> ~8 leaves of 8 ranks.
    const Aggregation agg = build_agg_tree(ranks, config_for(800'000));
    check_invariants(agg, ranks);
    EXPECT_GE(agg.leaves.size(), 7u);
    for (const AggLeaf& leaf : agg.leaves) {
        EXPECT_LE(leaf.num_particles * 100, 800'000u);
    }
}

TEST(AggTreeTest, LeavesRespectTargetWhenSplittable) {
    const std::vector<RankInfo> ranks = grid_ranks(16, 1, 1, 500);
    const Aggregation agg = build_agg_tree(ranks, config_for(100'000));
    check_invariants(agg, ranks);
    for (const AggLeaf& leaf : agg.leaves) {
        // 100 kB target / 100 B per particle = 1000 particles = 2 ranks.
        EXPECT_LE(leaf.num_particles, 1000u);
    }
}

TEST(AggTreeTest, AdaptsToImbalancedCounts) {
    // Half the domain holds 100x the particles; leaf rank counts should
    // differ strongly between the dense and sparse halves.
    std::vector<RankInfo> ranks = grid_ranks(16, 1, 1, 100);
    for (int i = 0; i < 8; ++i) {
        ranks[static_cast<std::size_t>(i)].num_particles = 10'000;
    }
    const Aggregation agg = build_agg_tree(ranks, config_for(400'000));
    check_invariants(agg, ranks);
    // Dense leaves hold few ranks, sparse leaves hold many.
    std::size_t min_ranks = 1000, max_ranks = 0;
    for (const AggLeaf& leaf : agg.leaves) {
        min_ranks = std::min(min_ranks, leaf.ranks.size());
        max_ranks = std::max(max_ranks, leaf.ranks.size());
    }
    EXPECT_LT(min_ranks, max_ranks);
    // Balance: no leaf should exceed ~target/bpp particles by more than the
    // single-rank carve-out.
    for (const AggLeaf& leaf : agg.leaves) {
        if (leaf.ranks.size() > 1) {
            EXPECT_LE(leaf.num_particles * 100, 400'000u * 2);
        }
    }
}

TEST(AggTreeTest, SingleHotRankGetsOwnLeaf) {
    std::vector<RankInfo> ranks = grid_ranks(8, 1, 1, 10);
    ranks[3].num_particles = 1'000'000;  // 100 MB >> target
    const Aggregation agg = build_agg_tree(ranks, config_for(1 << 20));
    check_invariants(agg, ranks);
    // The hot rank must sit alone in its leaf (data in a rank is never split).
    bool found = false;
    for (const AggLeaf& leaf : agg.leaves) {
        if (std::find(leaf.ranks.begin(), leaf.ranks.end(), 3) != leaf.ranks.end()) {
            EXPECT_EQ(leaf.ranks.size(), 1u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(AggTreeTest, ZeroParticleRanksDoNotSend) {
    std::vector<RankInfo> ranks = grid_ranks(4, 1, 1, 100);
    ranks[1].num_particles = 0;
    ranks[2].num_particles = 0;
    const Aggregation agg = build_agg_tree(ranks, config_for(10'000));
    check_invariants(agg, ranks);
    EXPECT_EQ(agg.total_particles(), 200u);
}

TEST(AggTreeTest, AllEmptyRanksYieldNoLeaves) {
    const std::vector<RankInfo> ranks = grid_ranks(4, 4, 1, 0);
    const Aggregation agg = build_agg_tree(ranks, config_for(1000));
    EXPECT_TRUE(agg.leaves.empty());
    for (int leaf : agg.rank_to_leaf) {
        EXPECT_EQ(leaf, -1);
    }
}

TEST(AggTreeTest, IdenticalBoundsCannotSplit) {
    // All ranks stacked on the same box: no valid split; one (overfull) leaf.
    std::vector<RankInfo> ranks(8);
    for (auto& r : ranks) {
        r.bounds = Box({0, 0, 0}, {1, 1, 1});
        r.num_particles = 1'000'000;
    }
    const Aggregation agg = build_agg_tree(ranks, config_for(1 << 20));
    EXPECT_EQ(agg.leaves.size(), 1u);
    check_invariants(agg, ranks);
}

TEST(AggTreeTest, SplitCostPrefersBalanced) {
    // 4 ranks in a row with counts 1, 1, 1, 3: the minimum-cost root split
    // is between ranks 2 and 3 (3 vs 3 particles), not the geometric
    // middle (2 vs 4). Rank 3 must therefore sit alone in its leaf.
    std::vector<RankInfo> ranks = grid_ranks(4, 1, 1, 1);
    ranks[3].num_particles = 3;
    AggTreeConfig config = config_for(300, 100);
    const Aggregation agg = build_agg_tree(ranks, config);
    check_invariants(agg, ranks);
    ASSERT_GE(agg.leaves.size(), 2u);
    for (const AggLeaf& leaf : agg.leaves) {
        if (std::find(leaf.ranks.begin(), leaf.ranks.end(), 3) != leaf.ranks.end()) {
            EXPECT_EQ(leaf.ranks, (std::vector<int>{3}));
        }
        // No leaf may exceed the balanced root partition's share.
        EXPECT_LE(leaf.num_particles, 3u);
    }
}

TEST(AggTreeTest, OverfullLeafCreatedOnBadSplit) {
    // Two ranks: 7 particles vs 1. Any split has imbalance 7 >= 4. With the
    // node at 800 B (target 600, factor 1.5 -> limit 900) an overfull leaf
    // is created instead of splitting.
    std::vector<RankInfo> ranks = grid_ranks(2, 1, 1, 0);
    ranks[0].num_particles = 7;
    ranks[1].num_particles = 1;
    AggTreeConfig config = config_for(600, 100);
    config.overfull_factor = 1.5;
    config.overfull_imbalance = 4.0;
    const Aggregation agg = build_agg_tree(ranks, config);
    EXPECT_EQ(agg.leaves.size(), 1u);  // overfull leaf
    check_invariants(agg, ranks);
}

TEST(AggTreeTest, BadSplitStillTakenWhenTooLarge) {
    // Same imbalance but the node is far over the overfull limit: split.
    std::vector<RankInfo> ranks = grid_ranks(2, 1, 1, 0);
    ranks[0].num_particles = 70;
    ranks[1].num_particles = 10;
    AggTreeConfig config = config_for(600, 100);  // node = 8000 B >> 900
    config.overfull_factor = 1.5;
    config.overfull_imbalance = 4.0;
    const Aggregation agg = build_agg_tree(ranks, config);
    EXPECT_EQ(agg.leaves.size(), 2u);
    check_invariants(agg, ranks);
}

TEST(AggTreeTest, SplitAllAxesFindsBetterCut) {
    // Imbalance along y; the longest axis is x. split_all_axes should give
    // leaves at least as balanced as longest-axis-only.
    std::vector<RankInfo> ranks;
    for (int y = 0; y < 2; ++y) {
        for (int x = 0; x < 8; ++x) {
            RankInfo r;
            r.bounds = Box({float(x), float(y), 0}, {float(x + 1), float(y + 1), 1});
            r.num_particles = y == 0 ? 100 : 900;
            ranks.push_back(r);
        }
    }
    AggTreeConfig config = config_for(800 * 100 * 2, 100);
    const Aggregation base = build_agg_tree(ranks, config);
    config.split_all_axes = true;
    const Aggregation all_axes = build_agg_tree(ranks, config);
    check_invariants(base, ranks);
    check_invariants(all_axes, ranks);
    auto worst = [](const Aggregation& agg) {
        std::uint64_t w = 0;
        for (const AggLeaf& leaf : agg.leaves) {
            w = std::max(w, leaf.num_particles);
        }
        return w;
    };
    EXPECT_LE(worst(all_axes), worst(base));
}

TEST(AggTreeTest, ParallelBuildMatchesSerial) {
    Pcg32 rng(3);
    std::vector<RankInfo> ranks = grid_ranks(8, 8, 4, 0);
    for (auto& r : ranks) {
        r.num_particles = rng.next_bounded(5000);
    }
    const AggTreeConfig config = config_for(200'000);
    const Aggregation serial = build_agg_tree(ranks, config, nullptr);
    ThreadPool pool(4);
    const Aggregation parallel = build_agg_tree(ranks, config, &pool);
    ASSERT_EQ(serial.leaves.size(), parallel.leaves.size());
    for (std::size_t i = 0; i < serial.leaves.size(); ++i) {
        EXPECT_EQ(serial.leaves[i].ranks, parallel.leaves[i].ranks);
        EXPECT_EQ(serial.leaves[i].num_particles, parallel.leaves[i].num_particles);
    }
    EXPECT_EQ(serial.rank_to_leaf, parallel.rank_to_leaf);
}

TEST(AggTreeTest, AggregatorAssignmentSpreadsOverRankSpace) {
    const std::vector<RankInfo> ranks = grid_ranks(16, 16, 1, 1000);
    Aggregation agg = build_agg_tree(ranks, config_for(1'600'000));
    ASSERT_GT(agg.leaves.size(), 4u);
    agg.assign_aggregators(256);
    std::set<int> aggregators;
    for (const AggLeaf& leaf : agg.leaves) {
        EXPECT_GE(leaf.aggregator, 0);
        EXPECT_LT(leaf.aggregator, 256);
        aggregators.insert(leaf.aggregator);
    }
    // Distinct aggregators, spread: gaps roughly nranks/nleaves.
    EXPECT_EQ(aggregators.size(), agg.leaves.size());
    const int expected_gap = 256 / static_cast<int>(agg.leaves.size());
    std::vector<int> sorted(aggregators.begin(), aggregators.end());
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        EXPECT_GE(sorted[i] - sorted[i - 1], expected_gap / 2);
    }
}

TEST(AggTreeTest, OverlappingLeavesFindsCorrectSubset) {
    const std::vector<RankInfo> ranks = grid_ranks(8, 8, 1, 1000);
    const Aggregation agg = build_agg_tree(ranks, config_for(800'000));
    const Box query({0.5f, 0.5f, 0.f}, {1.5f, 1.5f, 1.f});
    const std::vector<int> hits = agg.overlapping_leaves(query);
    EXPECT_FALSE(hits.empty());
    for (std::size_t l = 0; l < agg.leaves.size(); ++l) {
        const bool overlaps = agg.leaves[l].bounds.overlaps(query);
        const bool listed =
            std::find(hits.begin(), hits.end(), static_cast<int>(l)) != hits.end();
        EXPECT_EQ(overlaps, listed);
    }
}

TEST(AggTreeTest, FilePerProcessOneLeafPerNonEmptyRank) {
    std::vector<RankInfo> ranks = grid_ranks(4, 2, 1, 50);
    ranks[5].num_particles = 0;
    const Aggregation agg = build_file_per_process(ranks);
    EXPECT_EQ(agg.leaves.size(), 7u);
    check_invariants(agg, ranks);
    EXPECT_EQ(agg.rank_to_leaf[5], -1);
    EXPECT_FALSE(agg.nodes.empty());
}

class AggTreeTargets : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggTreeTargets, RandomCountsKeepInvariants) {
    Pcg32 rng(GetParam());
    std::vector<RankInfo> ranks = grid_ranks(8, 8, 2, 0);
    for (auto& r : ranks) {
        // Skewed distribution: many small ranks, a few large.
        const std::uint32_t roll = rng.next_bounded(100);
        r.num_particles = roll < 80 ? rng.next_bounded(100)
                                    : 1000 + rng.next_bounded(20'000);
    }
    const Aggregation agg = build_agg_tree(ranks, config_for(GetParam() * 100'000 + 50'000));
    check_invariants(agg, ranks);
}

INSTANTIATE_TEST_SUITE_P(Targets, AggTreeTargets, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace bat
