// Tests for the observability layer (docs/OBSERVABILITY.md): span tracer +
// Chrome-trace export/validation, the JSON parser, the metrics registry and
// its cross-rank reduction, and the traced 8-rank write+query round trip
// that CI feeds through tools/trace_summarize --validate.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "io/data_service.hpp"
#include "io/reader.hpp"
#include "io/writer.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/reduce.hpp"
#include "obs/trace.hpp"
#include "simio/pipeline_model.hpp"
#include "simio/machine.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

using obs::json::Value;

const Box kDomain({0, 0, 0}, {2, 2, 2});

/// Fresh tracing state for a test (each gtest test runs in its own process
/// under ctest, but the full binary can also run every test in sequence).
void fresh_trace(bool enabled) {
    obs::set_trace_enabled(false);
    obs::reset_trace();
    obs::set_trace_enabled(enabled);
}

struct Span {
    std::string cat;
    int count = 0;
    double total_us = 0;
};

/// Matched B/E pairs per name (validation is done separately; this helper
/// assumes a valid trace).
std::map<std::string, Span> spans_by_name(const Value& root) {
    std::map<std::string, Span> out;
    std::map<std::pair<long, long>, std::vector<std::pair<std::string, double>>> stacks;
    const Value* events = root.find("traceEvents");
    if (events == nullptr) {
        return out;
    }
    for (const Value& ev : events->array()) {
        const Value* ph = ev.find("ph");
        const Value* name = ev.find("name");
        const Value* ts = ev.find("ts");
        const Value* pid = ev.find("pid");
        const Value* tid = ev.find("tid");
        if (ph == nullptr || name == nullptr || ts == nullptr || pid == nullptr ||
            tid == nullptr) {
            continue;
        }
        const std::pair<long, long> track{static_cast<long>(pid->number()),
                                          static_cast<long>(tid->number())};
        if (ph->string() == "B") {
            stacks[track].emplace_back(name->string(), ts->number());
        } else if (ph->string() == "E") {
            auto& stack = stacks[track];
            if (stack.empty()) {
                ADD_FAILURE() << "unbalanced end event " << name->string();
                continue;
            }
            Span& s = out[name->string()];
            if (const Value* cat = ev.find("cat"); cat != nullptr) {
                s.cat = cat->string();
            }
            s.count += 1;
            s.total_us += ts->number() - stack.back().second;
            stack.pop_back();
        }
    }
    return out;
}

Value parse_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return obs::json::parse(os.str());
}

// ---- JSON parser ----------------------------------------------------------

TEST(ObsJsonTest, ParsesScalarsArraysObjects) {
    const Value v = obs::json::parse(
        R"({"i": 42, "f": -2.5e2, "t": true, "n": null, "s": "a\"b\\c\nd",)"
        R"( "arr": [1, [2], {"k": 3}]})");
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.find("i")->number(), 42.0);
    EXPECT_EQ(v.find("f")->number(), -250.0);
    EXPECT_TRUE(v.find("t")->boolean());
    EXPECT_TRUE(v.find("n")->is_null());
    EXPECT_EQ(v.find("s")->string(), "a\"b\\c\nd");
    const Value& arr = *v.find("arr");
    ASSERT_EQ(arr.array().size(), 3u);
    EXPECT_EQ(arr.array()[1].array()[0].number(), 2.0);
    EXPECT_EQ(arr.array()[2].find("k")->number(), 3.0);
}

TEST(ObsJsonTest, ParsesEscapeSequences) {
    EXPECT_EQ(obs::json::parse(R"("Aé\n")").string(), "A\xc3\xa9\n");
    EXPECT_EQ(obs::json::parse(R"("Aé\t")").string(), "A\xc3\xa9\t");
}

TEST(ObsJsonTest, RejectsMalformedInput) {
    EXPECT_THROW(obs::json::parse("{"), Error);
    EXPECT_THROW(obs::json::parse("[1,]"), Error);
    EXPECT_THROW(obs::json::parse("{\"a\": 1} trailing"), Error);
    EXPECT_THROW(obs::json::parse("nulll"), Error);
    EXPECT_THROW(obs::json::parse(""), Error);
}

// ---- tracer ---------------------------------------------------------------

TEST(ObsTraceTest, DisabledScopeEmitsNothing) {
    fresh_trace(false);
    for (int i = 0; i < 100; ++i) {
        BAT_TRACE_SCOPE("quiet");
    }
    const Value root = obs::json::parse(obs::chrome_trace_json());
    const obs::TraceCheck check = obs::validate_chrome_trace(root);
    EXPECT_TRUE(check.ok) << check.error;
    EXPECT_EQ(check.num_events, 0);
    EXPECT_EQ(obs::dropped_events(), 0u);
}

TEST(ObsTraceTest, NestedSpansExportBalanced) {
    fresh_trace(true);
    {
        BAT_TRACE_SCOPE("outer");
        {
            BAT_TRACE_SCOPE_CAT("inner", "test");
        }
        obs::emit_instant("tick", "test");
    }
    obs::set_trace_enabled(false);
    const Value root = obs::json::parse(obs::chrome_trace_json());
    const obs::TraceCheck check = obs::validate_chrome_trace(root);
    ASSERT_TRUE(check.ok) << check.error;
    EXPECT_EQ(check.num_spans, 2);
    EXPECT_EQ(check.num_events, 5);  // 2B + 2E + 1 instant
    const std::map<std::string, Span> spans = spans_by_name(root);
    EXPECT_EQ(spans.at("inner").cat, "test");
    EXPECT_LE(spans.at("inner").total_us, spans.at("outer").total_us);
}

TEST(ObsTraceTest, FlowEventsPairUp) {
    fresh_trace(true);
    const std::uint64_t flow = obs::next_flow_id();
    obs::emit_begin("send", "t");
    obs::emit_flow_start("t", flow);
    obs::emit_end("send", "t");
    obs::emit_begin("recv", "t");
    obs::emit_flow_end("t", flow);
    obs::emit_end("recv", "t");
    obs::set_trace_enabled(false);
    const Value root = obs::json::parse(obs::chrome_trace_json());
    const obs::TraceCheck check = obs::validate_chrome_trace(root);
    ASSERT_TRUE(check.ok) << check.error;
    EXPECT_EQ(check.num_flows, 1);
}

TEST(ObsTraceTest, ValidateRejectsUnbalancedTrace) {
    const Value missing_end = obs::json::parse(
        R"({"traceEvents":[{"name":"a","cat":"x","ph":"B","ts":1,"pid":1,"tid":1}]})");
    EXPECT_FALSE(obs::validate_chrome_trace(missing_end).ok);

    const Value wrong_name = obs::json::parse(
        R"({"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},)"
        R"({"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]})");
    EXPECT_FALSE(obs::validate_chrome_trace(wrong_name).ok);

    const Value orphan_flow = obs::json::parse(
        R"({"traceEvents":[{"name":"m","ph":"f","ts":1,"pid":1,"tid":1,"id":7}]})");
    EXPECT_FALSE(obs::validate_chrome_trace(orphan_flow).ok);
}

TEST(ObsTraceTest, RingOverflowCountsDropped) {
    obs::set_trace_enabled(false);
    obs::set_ring_capacity(64);
    obs::reset_trace();
    obs::set_trace_enabled(true);
    for (int i = 0; i < 1000; ++i) {
        obs::emit_instant("spin", "test");
    }
    obs::set_trace_enabled(false);
    EXPECT_EQ(obs::dropped_events(), 1000u - 64u);
    const Value root = obs::json::parse(obs::chrome_trace_json());
    EXPECT_EQ(root.find("otherData")->find("dropped_events")->number(), 1000.0 - 64.0);
    obs::set_ring_capacity(std::size_t{1} << 16);
    obs::reset_trace();
}

TEST(ObsTraceTest, PhaseSpanAccumulatesWithTracingOff) {
    fresh_trace(false);
    double acc = 0;
    {
        obs::PhaseSpan span("work", &acc);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(acc, 0.005);
    {
        obs::PhaseSpan span("work", &acc);  // close() is idempotent
        span.close();
        span.close();
    }
    const Value root = obs::json::parse(obs::chrome_trace_json());
    EXPECT_EQ(obs::validate_chrome_trace(root).num_events, 0);
}

// ---- metrics --------------------------------------------------------------

TEST(ObsMetricsTest, HistogramEdgesAreInclusive) {
    obs::Histogram h({1.0, 2.0, 4.0});
    h.record(2.0);   // == edge -> bucket 1
    h.record(2.1);   // -> bucket 2
    h.record(0.5);   // -> bucket 0
    h.record(99.0);  // -> overflow
    const auto counts = h.bucket_counts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
}

TEST(ObsMetricsTest, PercentileEdgeCases) {
    // Empty histogram: every quantile is 0 by contract.
    obs::Histogram empty({1.0, 10.0});
    EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(1.0), 0.0);

    // Single sample: every quantile collapses to that sample (interpolation
    // is clamped to the observed [min, max]).
    obs::Histogram one({1.0, 10.0, 100.0});
    one.record(7.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(one.percentile(1.0), 7.0);

    // All samples past the last edge land in the overflow bucket, whose
    // missing upper edge is the observed max — estimates must stay inside
    // [min, max], not run off to infinity.
    obs::Histogram over({1.0, 2.0});
    over.record(50.0);
    over.record(70.0);
    over.record(90.0);
    EXPECT_GE(over.percentile(0.5), 50.0);
    EXPECT_LE(over.percentile(0.5), 90.0);
    EXPECT_DOUBLE_EQ(over.percentile(1.0), 90.0);

    // p0 / p100 pin to the observed extremes even when the samples occupy
    // a bucket interior, and out-of-range q clamps instead of misbehaving.
    obs::Histogram h({1.0, 10.0, 100.0});
    h.record(3.0);
    h.record(5.0);
    h.record(42.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
    // Monotone in q.
    double prev = h.percentile(0.0);
    for (double q = 0.1; q <= 1.0; q += 0.1) {
        const double v = h.percentile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(ObsMetricsTest, MergeMatchesConcatenation) {
    obs::MetricsRegistry a;
    obs::MetricsRegistry b;
    a.counter("c").add(3);
    b.counter("c").add(4);
    b.counter("only_b").add(9);
    a.gauge("g").set(1.5);
    b.gauge("g").set(7.25);

    // Deterministic pseudo-random samples split across the two registries.
    RunningStats ground;
    std::vector<double> bounds{1, 10, 100, 1000};
    std::uint64_t x = 12345;
    for (int i = 0; i < 500; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const double v = static_cast<double>(x % 2000) / 1.7;
        ground.add(v);
        (i % 2 == 0 ? a : b).histogram("h", bounds).record(v);
    }

    a.merge(b);
    EXPECT_EQ(a.counter("c").value(), 7u);
    EXPECT_EQ(a.counter("only_b").value(), 9u);
    EXPECT_DOUBLE_EQ(a.gauge("g").value(), 7.25);

    const RunningStats merged = a.histogram("h").stats();
    EXPECT_EQ(merged.count(), ground.count());
    EXPECT_NEAR(merged.mean(), ground.mean(), 1e-9);
    EXPECT_NEAR(merged.stddev(), ground.stddev(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), ground.min());
    EXPECT_DOUBLE_EQ(merged.max(), ground.max());
}

TEST(ObsMetricsTest, BytesRoundTripPreservesJson) {
    obs::MetricsRegistry reg;
    reg.counter("requests").add(17);
    reg.gauge("load").set(0.625);
    reg.histogram("lat", {1, 2, 4}).record(1.5);
    reg.histogram("lat", {1, 2, 4}).record(3.0);
    const obs::MetricsRegistry back = obs::MetricsRegistry::from_bytes(reg.to_bytes());
    EXPECT_EQ(back.to_json(), reg.to_json());
    // And the JSON itself parses.
    const Value v = obs::json::parse(reg.to_json());
    EXPECT_EQ(v.find("counters")->find("requests")->number(), 17.0);
    EXPECT_EQ(v.find("histograms")->find("lat")->find("count")->number(), 2.0);
}

TEST(ObsMetricsTest, ReduceMetricsGathersToRoot) {
    std::uint64_t root_counter = 0;
    double root_gauge = -1;
    std::int64_t root_hist_count = -1;
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        obs::MetricsRegistry local;
        local.counter("events").add(static_cast<std::uint64_t>(comm.rank()) + 1);
        local.gauge("peak").set(static_cast<double>(comm.rank()));
        local.histogram("lat").record(static_cast<double>(comm.rank()) * 10.0);
        const obs::MetricsRegistry merged = obs::reduce_metrics(comm, local);
        if (comm.rank() == 0) {
            const Value v = obs::json::parse(merged.to_json());
            root_counter = static_cast<std::uint64_t>(v.find("counters")->find("events")->number());
            root_gauge = v.find("gauges")->find("peak")->number();
            root_hist_count =
                static_cast<std::int64_t>(v.find("histograms")->find("lat")->find("count")->number());
        } else {
            EXPECT_TRUE(merged.empty());
        }
    });
    EXPECT_EQ(root_counter, 1u + 2u + 3u + 4u);
    EXPECT_DOUBLE_EQ(root_gauge, 3.0);
    EXPECT_EQ(root_hist_count, 4);
}

TEST(ObsMetricsTest, ReduceMetricsSpreadReportsPerRankMinMax) {
    obs::ReducedMetrics reduced;
    bool nonroot_empty = true;
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        obs::MetricsRegistry local;
        // Counter present on every rank with value rank+1: min 1 at rank 0,
        // max 4 at rank 3, sum 10.
        local.counter("events").add(static_cast<std::uint64_t>(comm.rank()) + 1);
        // Counter present on a single rank: absent ranks count as 0.
        if (comm.rank() == 2) {
            local.counter("rare").add(7);
        }
        obs::ReducedMetrics r = obs::reduce_metrics_spread(comm, local);
        if (comm.rank() == 0) {
            reduced = std::move(r);
        } else if (!r.merged.empty() || !r.counter_spread.empty()) {
            nonroot_empty = false;
        }
    });
    EXPECT_TRUE(nonroot_empty);

    ASSERT_EQ(reduced.counter_spread.count("events"), 1u);
    const obs::CounterSpread& events = reduced.counter_spread.at("events");
    EXPECT_EQ(events.min, 1u);
    EXPECT_EQ(events.min_rank, 0);
    EXPECT_EQ(events.max, 4u);
    EXPECT_EQ(events.max_rank, 3);
    EXPECT_EQ(events.sum, 10u);

    ASSERT_EQ(reduced.counter_spread.count("rare"), 1u);
    const obs::CounterSpread& rare = reduced.counter_spread.at("rare");
    EXPECT_EQ(rare.min, 0u);
    EXPECT_EQ(rare.max, 7u);
    EXPECT_EQ(rare.max_rank, 2);
    EXPECT_EQ(rare.sum, 7u);

    // The merged registry still matches plain reduce_metrics semantics.
    const Value v = obs::json::parse(reduced.merged.to_json());
    EXPECT_EQ(v.find("counters")->find("events")->number(), 10.0);
}

// ---- simio virtual tracks -------------------------------------------------

TEST(ObsSimioTest, ModeledPhasesMatchTraceSpans) {
    fresh_trace(true);
    const GridDecomp decomp = grid_decomp_3d(16, kDomain);
    const std::vector<std::uint64_t> counts(16, 2000);
    const std::vector<RankInfo> infos = make_rank_infos(decomp, counts);
    simio::TwoPhaseParams params;
    params.machine = simio::stampede2_like();
    params.tree.target_file_size = 1 << 20;
    params.tree.bytes_per_particle = 124;
    const simio::SimResult result = simio::simulate_write(infos, params);
    obs::set_trace_enabled(false);

    const Value root = obs::json::parse(obs::chrome_trace_json());
    const obs::TraceCheck check = obs::validate_chrome_trace(root);
    ASSERT_TRUE(check.ok) << check.error;
    const std::map<std::string, Span> spans = spans_by_name(root);
    for (const char* phase : {"gather", "tree_build", "scatter", "transfer",
                              "bat_build", "file_write", "metadata"}) {
        ASSERT_TRUE(spans.count(phase)) << phase;
        EXPECT_EQ(spans.at(phase).cat, "simio");
        EXPECT_NEAR(spans.at(phase).total_us / 1e6, result.phase_seconds(phase),
                    1e-6 + 0.001 * result.phase_seconds(phase))
            << phase;
    }
}

// ---- the traced end-to-end pipeline (CI runs this via trace_summarize) ----

TEST(TraceRoundTrip, EightRankWriteAndQueryProducesValidTrace) {
    fresh_trace(true);
    obs::MetricsRegistry::global().clear();

    const testing::TempDir dir;
    const int nranks = 8;
    const GridDecomp decomp = grid_decomp_3d(nranks, kDomain);
    const ParticleSet global = make_uniform_particles(kDomain, 24'000, 3, 7);
    const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);
    ThreadPool pool(2);

    std::filesystem::path meta_path;
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        const int r = comm.rank();
        WriterConfig config;
        config.directory = dir.path();
        config.basename = "traced";
        config.tree.target_file_size = 64 << 10;
        config.pool = &pool;
        const WriteResult wr = write_particles(
            comm, per_rank[static_cast<std::size_t>(r)], decomp.rank_box(r), config);
        if (r == 0) {
            meta_path = wr.metadata_path;
        }
        // A guaranteed pool task, so pool.task spans appear even if the
        // builder chose not to parallelize at this size.
        TaskGroup group(pool);
        group.run([] {});
        group.wait();

        read_particles(comm, wr.metadata_path, decomp.rank_read_box(r));

        DataService service(comm, wr.metadata_path);
        BatQuery query;
        query.box = decomp.rank_read_box(r);
        query.inclusive_upper = false;
        service.query_round(query);
    });
    obs::set_trace_enabled(false);

    // Export through the file path (what BAT_TRACE_FILE does at exit).
    const auto trace_path = dir.path() / "trace.json";
    const auto metrics_path = dir.path() / "metrics.json";
    obs::write_chrome_trace(trace_path);
    obs::MetricsRegistry::global().write_json(metrics_path);

    EXPECT_EQ(obs::dropped_events(), 0u);
    const Value root = parse_file(trace_path);
    const obs::TraceCheck check = obs::validate_chrome_trace(root);
    ASSERT_TRUE(check.ok) << check.error;
    EXPECT_EQ(check.num_ranks, nranks);
    EXPECT_GT(check.num_flows, 0);
    EXPECT_GT(check.num_spans, 0);

    const std::map<std::string, Span> spans = spans_by_name(root);
    for (const char* required :
         {"write.gather", "write.tree_build", "write.scatter", "write.transfer",
          "write.bat_build", "write.file_write", "write.metadata", "read.metadata",
          "read.request", "read.serve", "read.merge", "read.local", "service.query_round",
          "vmpi.send", "vmpi.recv", "vmpi.gatherv", "vmpi.scatterv", "pool.task"}) {
        EXPECT_TRUE(spans.count(required)) << "missing span: " << required;
    }
    // One write phase set per rank.
    EXPECT_EQ(spans.at("write.gather").count, nranks);
    EXPECT_EQ(spans.at("service.query_round").count, nranks);

    // The metrics export parses and carries the pipeline's counters.
    const Value metrics = parse_file(metrics_path);
    EXPECT_GT(metrics.find("counters")->find("write.bytes_written")->number(), 0.0);
    // Transfer-phase accounting: every particle payload reaching an
    // aggregator (wire or self fast path) is counted, and wire messages
    // land in the size histogram.
    EXPECT_GT(metrics.find("counters")->find("write.transfer_bytes")->number(), 0.0);
    const Value* msg_hist = metrics.find("histograms")->find("write.transfer_msg_bytes");
    ASSERT_NE(msg_hist, nullptr);
    EXPECT_GE(msg_hist->find("count")->number(), 1.0);
    EXPECT_EQ(metrics.find("counters")->find("service.rounds")->number(),
              static_cast<double>(nranks));
    EXPECT_EQ(metrics.find("counters")->find("service.particles_served")->number(),
              static_cast<double>(global.count()));
    const Value* pool_hist = metrics.find("histograms")->find("pool.run_us");
    ASSERT_NE(pool_hist, nullptr);
    EXPECT_GE(pool_hist->find("count")->number(), 8.0);
}

}  // namespace
}  // namespace bat
