// Tests for the virtual MPI runtime: point-to-point semantics, ordering,
// probes, collectives, and the nonblocking barrier the read pipeline
// depends on.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "vmpi/comm.hpp"

namespace bat::vmpi {
namespace {

Bytes make_payload(int value, std::size_t size = 8) {
    Bytes b(size);
    std::memcpy(b.data(), &value, sizeof(int));
    return b;
}

int payload_value(const Bytes& b) {
    int v = 0;
    std::memcpy(&v, b.data(), sizeof(int));
    return v;
}

class VmpiRanks : public ::testing::TestWithParam<int> {};

TEST_P(VmpiRanks, RingSendRecv) {
    const int n = GetParam();
    Runtime::run(n, [n](Comm& comm) {
        const int next = (comm.rank() + 1) % n;
        const int prev = (comm.rank() + n - 1) % n;
        comm.isend(next, 7, make_payload(comm.rank()));
        const Bytes got = comm.recv(prev, 7);
        EXPECT_EQ(payload_value(got), prev);
    });
}

TEST_P(VmpiRanks, GatherCollectsAllValues) {
    const int n = GetParam();
    Runtime::run(n, [n](Comm& comm) {
        const std::vector<int> all = comm.gather(comm.rank() * 10, 0);
        if (comm.rank() == 0) {
            ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
            for (int r = 0; r < n; ++r) {
                EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
            }
        } else {
            EXPECT_TRUE(all.empty());
        }
    });
}

TEST_P(VmpiRanks, GathervVariableSizes) {
    const int n = GetParam();
    Runtime::run(n, [n](Comm& comm) {
        Bytes mine(static_cast<std::size_t>(comm.rank()), std::byte{0xAB});
        const std::vector<Bytes> all = comm.gatherv(std::move(mine), 0);
        if (comm.rank() == 0) {
            ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
            for (int r = 0; r < n; ++r) {
                EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                          static_cast<std::size_t>(r));
            }
        }
    });
}

TEST_P(VmpiRanks, ScattervDeliversPerRankPayloads) {
    const int n = GetParam();
    Runtime::run(n, [n](Comm& comm) {
        std::vector<Bytes> payloads;
        if (comm.rank() == 0) {
            for (int r = 0; r < n; ++r) {
                payloads.push_back(make_payload(r * 3));
            }
        }
        const Bytes mine = comm.scatterv(std::move(payloads), 0);
        EXPECT_EQ(payload_value(mine), comm.rank() * 3);
    });
}

TEST_P(VmpiRanks, BcastReachesEveryRank) {
    const int n = GetParam();
    Runtime::run(n, [](Comm& comm) {
        Bytes payload;
        if (comm.rank() == 0) {
            payload = make_payload(4242);
        }
        const Bytes got = comm.bcast(std::move(payload), 0);
        EXPECT_EQ(payload_value(got), 4242);
    });
}

TEST_P(VmpiRanks, AllreduceSum) {
    const int n = GetParam();
    Runtime::run(n, [n](Comm& comm) {
        const int sum =
            comm.allreduce(comm.rank(), [](int a, int b) { return a + b; });
        EXPECT_EQ(sum, n * (n - 1) / 2);
    });
}

TEST_P(VmpiRanks, AllgathervEveryoneSeesEverything) {
    const int n = GetParam();
    Runtime::run(n, [n](Comm& comm) {
        const std::vector<Bytes> all = comm.allgatherv(make_payload(comm.rank() + 1));
        ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            EXPECT_EQ(payload_value(all[static_cast<std::size_t>(r)]), r + 1);
        }
    });
}

TEST_P(VmpiRanks, AlltoallvExchangesPersonalizedData) {
    const int n = GetParam();
    Runtime::run(n, [n](Comm& comm) {
        std::vector<Bytes> outgoing;
        for (int r = 0; r < n; ++r) {
            outgoing.push_back(make_payload(comm.rank() * 100 + r));
        }
        const std::vector<Bytes> incoming = comm.alltoallv(std::move(outgoing));
        ASSERT_EQ(incoming.size(), static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            EXPECT_EQ(payload_value(incoming[static_cast<std::size_t>(r)]),
                      r * 100 + comm.rank());
        }
    });
}

TEST_P(VmpiRanks, BarrierSynchronizes) {
    const int n = GetParam();
    std::atomic<int> before{0};
    Runtime::run(n, [&before, n](Comm& comm) {
        before.fetch_add(1);
        comm.barrier();
        // After the barrier every rank must have incremented.
        EXPECT_EQ(before.load(), n);
    });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, VmpiRanks, ::testing::Values(1, 2, 3, 8, 16));

TEST(VmpiTest, FifoOrderPerChannel) {
    Runtime::run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            for (int i = 0; i < 50; ++i) {
                comm.isend(1, 3, make_payload(i));
            }
        } else {
            for (int i = 0; i < 50; ++i) {
                EXPECT_EQ(payload_value(comm.recv(0, 3)), i);
            }
        }
    });
}

TEST(VmpiTest, TagsSeparateStreams) {
    Runtime::run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.isend(1, 1, make_payload(111));
            comm.isend(1, 2, make_payload(222));
        } else {
            // Receive in the opposite order of sending: tags must match.
            EXPECT_EQ(payload_value(comm.recv(0, 2)), 222);
            EXPECT_EQ(payload_value(comm.recv(0, 1)), 111);
        }
    });
}

TEST(VmpiTest, AnySourceReceives) {
    Runtime::run(4, [](Comm& comm) {
        if (comm.rank() != 0) {
            comm.isend(0, 9, make_payload(comm.rank()));
        } else {
            std::vector<bool> seen(4, false);
            for (int i = 0; i < 3; ++i) {
                int from = -1;
                const Bytes b = comm.recv(kAnySource, 9, &from);
                EXPECT_EQ(payload_value(b), from);
                EXPECT_FALSE(seen[static_cast<std::size_t>(from)]);
                seen[static_cast<std::size_t>(from)] = true;
            }
        }
    });
}

TEST(VmpiTest, IprobeSeesWithoutConsuming) {
    Runtime::run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.isend(1, 5, make_payload(77, 24));
        } else {
            int from = -1;
            std::size_t bytes = 0;
            while (!comm.iprobe(kAnySource, 5, &from, &bytes)) {
            }
            EXPECT_EQ(from, 0);
            EXPECT_EQ(bytes, 24u);
            // Probe again: still there.
            EXPECT_TRUE(comm.iprobe(0, 5));
            EXPECT_EQ(payload_value(comm.recv(0, 5)), 77);
            EXPECT_FALSE(comm.iprobe(0, 5));
        }
    });
}

TEST(VmpiTest, IrecvCompletesWhenMessageArrives) {
    Runtime::run(2, [](Comm& comm) {
        if (comm.rank() == 1) {
            Bytes out;
            Request r = comm.irecv(0, 4, out);
            r.wait();
            EXPECT_EQ(payload_value(out), 31337);
        } else {
            comm.isend(1, 4, make_payload(31337));
        }
    });
}

TEST(VmpiTest, IbarrierDoesNotBlockServerLoop) {
    // Mirrors the read pipeline: rank 1 enters the ibarrier immediately but
    // must keep serving rank 0's request before the barrier completes.
    Runtime::run(2, [](Comm& comm) {
        if (comm.rank() == 0) {
            comm.isend(1, 11, make_payload(1));
            Bytes reply;
            Request rr = comm.irecv(1, 12, reply);
            Request barrier;
            bool entered = false;
            for (;;) {
                if (!entered && rr.test()) {
                    barrier = comm.ibarrier();
                    entered = true;
                }
                if (entered && barrier.test()) {
                    break;
                }
            }
            EXPECT_EQ(payload_value(reply), 2);
        } else {
            Request barrier = comm.ibarrier();  // enters early
            bool served = false;
            for (;;) {
                if (!served && comm.iprobe(kAnySource, 11)) {
                    comm.recv(0, 11);
                    comm.isend(0, 12, make_payload(2));
                    served = true;
                }
                if (barrier.test()) {
                    break;
                }
            }
            EXPECT_TRUE(served);
        }
    });
}

TEST(VmpiTest, RankExceptionPropagates) {
    EXPECT_THROW(Runtime::run(4,
                              [](Comm& comm) {
                                  if (comm.rank() == 2) {
                                      throw Error("rank 2 failed");
                                  }
                              }),
                 Error);
}

TEST(VmpiTest, SelfSendWorks) {
    Runtime::run(1, [](Comm& comm) {
        comm.isend(0, 1, make_payload(5));
        EXPECT_EQ(payload_value(comm.recv(0, 1)), 5);
    });
}

TEST(VmpiTest, TypedHelpersRoundTrip) {
    Runtime::run(2, [](Comm& comm) {
        struct Pod {
            double a;
            int b;
        };
        if (comm.rank() == 0) {
            comm.isend_value(1, 2, Pod{2.5, -3});
            const std::vector<float> xs{1.f, 2.f, 3.f};
            comm.isend_vector<float>(1, 3, xs);
        } else {
            const Pod p = comm.recv_value<Pod>(0, 2);
            EXPECT_DOUBLE_EQ(p.a, 2.5);
            EXPECT_EQ(p.b, -3);
            const std::vector<float> xs = comm.recv_vector<float>(0, 3);
            EXPECT_EQ(xs, (std::vector<float>{1.f, 2.f, 3.f}));
        }
    });
}

}  // namespace
}  // namespace bat::vmpi
