// Tests for the baseline I/O strategies (file per process, single shared
// file): round trips, shifted reads, and offset integrity.

#include <gtest/gtest.h>

#include <mutex>

#include "io/baselines.hpp"
#include "test_helpers.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {2, 2, 2});

std::vector<ParticleSet> per_rank_data(int nranks, std::size_t n, std::uint64_t seed) {
    const GridDecomp decomp = grid_decomp_3d(nranks, kDomain);
    const ParticleSet global = make_uniform_particles(kDomain, n, 2, seed);
    return partition_particles(global, decomp);
}

TEST(FppTest, RoundTripOwnFile) {
    const testing::TempDir dir;
    auto data = per_rank_data(4, 4'000, 1);
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        const auto& mine = data[static_cast<std::size_t>(comm.rank())];
        fpp_write(comm, mine, dir.path(), "fpp");
        const ParticleSet back = fpp_read(comm, dir.path(), "fpp", /*shift=*/0);
        EXPECT_EQ(testing::particle_keys(back), testing::particle_keys(mine));
    });
}

TEST(FppTest, ShiftedReadGetsNeighborData) {
    const testing::TempDir dir;
    auto data = per_rank_data(4, 4'000, 2);
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        fpp_write(comm, data[static_cast<std::size_t>(comm.rank())], dir.path(), "fpp");
        const ParticleSet back = fpp_read(comm, dir.path(), "fpp", /*shift=*/1);
        const auto& expected = data[static_cast<std::size_t>((comm.rank() + 1) % 4)];
        EXPECT_EQ(testing::particle_keys(back), testing::particle_keys(expected));
    });
}

TEST(FppTest, BytesWrittenReported) {
    const testing::TempDir dir;
    auto data = per_rank_data(2, 1'000, 3);
    vmpi::Runtime::run(2, [&](vmpi::Comm& comm) {
        const auto& mine = data[static_cast<std::size_t>(comm.rank())];
        const std::uint64_t bytes = fpp_write(comm, mine, dir.path(), "fpp");
        EXPECT_GE(bytes, mine.payload_bytes());
    });
}

TEST(FppTest, ReadRejectsWrongRankCount) {
    const testing::TempDir dir;
    auto data = per_rank_data(4, 1'000, 4);
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        fpp_write(comm, data[static_cast<std::size_t>(comm.rank())], dir.path(), "fpp");
    });
    vmpi::Runtime::run(2, [&](vmpi::Comm& comm) {
        EXPECT_THROW(fpp_read(comm, dir.path(), "fpp"), Error);
    });
}

TEST(SharedTest, RoundTripOwnBlock) {
    const testing::TempDir dir;
    auto data = per_rank_data(4, 4'000, 5);
    const auto path = dir.path() / "shared.dat";
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        const auto& mine = data[static_cast<std::size_t>(comm.rank())];
        shared_write(comm, mine, path);
        const ParticleSet back = shared_read(comm, path, 0);
        EXPECT_EQ(testing::particle_keys(back), testing::particle_keys(mine));
    });
}

TEST(SharedTest, ShiftedReadDefeatsCache) {
    const testing::TempDir dir;
    auto data = per_rank_data(3, 3'000, 6);
    const auto path = dir.path() / "shared.dat";
    vmpi::Runtime::run(3, [&](vmpi::Comm& comm) {
        shared_write(comm, data[static_cast<std::size_t>(comm.rank())], path);
        const ParticleSet back = shared_read(comm, path, 2);
        const auto& expected = data[static_cast<std::size_t>((comm.rank() + 2) % 3)];
        EXPECT_EQ(testing::particle_keys(back), testing::particle_keys(expected));
    });
}

TEST(SharedTest, BlocksDoNotOverlap) {
    // Verify every rank's block round-trips even with very different sizes,
    // i.e. the exclusive-scan offsets are correct.
    const testing::TempDir dir;
    const auto path = dir.path() / "shared.dat";
    const int nranks = 5;
    std::vector<ParticleSet> data;
    for (int r = 0; r < nranks; ++r) {
        data.push_back(make_uniform_particles(
            kDomain, static_cast<std::size_t>(100 * (r + 1) * (r + 1)), 2,
            static_cast<std::uint64_t>(r + 10)));
    }
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        shared_write(comm, data[static_cast<std::size_t>(comm.rank())], path);
        for (int shift = 0; shift < nranks; ++shift) {
            const ParticleSet back = shared_read(comm, path, shift);
            const auto& expected =
                data[static_cast<std::size_t>((comm.rank() + shift) % nranks)];
            ASSERT_EQ(back.count(), expected.count());
        }
    });
}

TEST(SharedTest, EmptyRankBlockSupported) {
    const testing::TempDir dir;
    const auto path = dir.path() / "shared.dat";
    std::vector<ParticleSet> data;
    data.push_back(make_uniform_particles(kDomain, 1'000, 2, 20));
    data.emplace_back(uniform_attr_names(2));  // rank 1 owns nothing
    vmpi::Runtime::run(2, [&](vmpi::Comm& comm) {
        shared_write(comm, data[static_cast<std::size_t>(comm.rank())], path);
        const ParticleSet back = shared_read(comm, path, 0);
        EXPECT_EQ(back.count(), data[static_cast<std::size_t>(comm.rank())].count());
    });
}

}  // namespace
}  // namespace bat
