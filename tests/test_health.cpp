// Tests for the run-health layer (docs/OBSERVABILITY.md): progress epochs,
// the stall watchdog, flight-recorder dumps, and bat-report-v1 run reports.
//
// The two stall tests run with tracing OFF: a flight-record dump reads the
// tails of the trace rings, which is only race-free when no thread is
// concurrently appending events. (Production crash dumps have the same
// property trivially — the process is dying.)

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/reader.hpp"
#include "io/writer.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/output_path.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"
#include "vmpi/comm.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

using obs::json::Value;
using namespace std::chrono_literals;

const Box kDomain({0, 0, 0}, {2, 2, 2});

Value parse_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return obs::json::parse(os.str());
}

/// Quiesce health + trace state. Each gtest test runs in its own process
/// under ctest, but the full binary can also run every test in sequence.
void fresh_health() {
    obs::stop_watchdog();
    obs::set_trace_enabled(false);
    obs::reset_trace();
    obs::reset_run_report();
    obs::MetricsRegistry::global().clear();
}

bool contains_rank(const std::vector<int>& ranks, int r) {
    return std::find(ranks.begin(), ranks.end(), r) != ranks.end();
}

/// stuck_ranks of a flight record as ints.
std::vector<int> flight_stuck_ranks(const Value& record) {
    std::vector<int> out;
    const Value* stuck = record.find("stuck_ranks");
    if (stuck != nullptr && stuck->is_array()) {
        for (const Value& v : stuck->array()) {
            out.push_back(static_cast<int>(v.number()));
        }
    }
    return out;
}

// ---- unit pieces ----------------------------------------------------------

TEST(HealthUnitTest, ExpandOutputPathSubstitutesPid) {
    const std::string pid = std::to_string(::getpid());
    EXPECT_EQ(obs::expand_output_path("plain.json"), "plain.json");
    EXPECT_EQ(obs::expand_output_path("flight_%p.json"), "flight_" + pid + ".json");
    EXPECT_EQ(obs::expand_output_path("%p/%p"), pid + "/" + pid);
    EXPECT_EQ(obs::expand_output_path(""), "");
    EXPECT_EQ(obs::expand_output_path("%p"), pid);
    // A lone '%' or unknown escape passes through untouched.
    EXPECT_EQ(obs::expand_output_path("50%_%q.json"), "50%_%q.json");
    EXPECT_EQ(obs::expand_output_path("trailing%"), "trailing%");
}

TEST(HealthUnitTest, DiagProvidersAppearInFlightRecordsUntilUnregistered) {
    const std::uint64_t id = obs::register_diag_provider(
        "unit_probe", [] { return std::string("{\"answer\":42}"); });

    const Value record = obs::json::parse(obs::flight_record_json("unit-test"));
    ASSERT_NE(record.find("schema"), nullptr);
    EXPECT_EQ(record.find("schema")->string(), "bat-flight-v1");
    EXPECT_EQ(record.find("reason")->string(), "unit-test");

    const Value* subsystems = record.find("subsystems");
    ASSERT_NE(subsystems, nullptr);
    ASSERT_TRUE(subsystems->is_array());
    bool found = false;
    for (const Value& sub : subsystems->array()) {
        if (sub.find("name")->string() != "unit_probe") {
            continue;
        }
        found = true;
        const Value* state = sub.find("state");
        ASSERT_NE(state, nullptr);
        EXPECT_EQ(state->find("answer")->number(), 42.0);
    }
    EXPECT_TRUE(found);

    obs::unregister_diag_provider(id);
    const Value after = obs::json::parse(obs::flight_record_json("unit-test"));
    for (const Value& sub : after.find("subsystems")->array()) {
        EXPECT_NE(sub.find("name")->string(), "unit_probe");
    }
}

TEST(HealthUnitTest, DumpFlightRecordWritesParseableJsonWithPidExpansion) {
    const testing::TempDir dir;
    ASSERT_TRUE(obs::dump_flight_record("explicit-test", dir.path() / "flight_%p.json"));

    const auto expanded =
        dir.path() / ("flight_" + std::to_string(::getpid()) + ".json");
    ASSERT_TRUE(std::filesystem::exists(expanded));
    const Value record = parse_file(expanded);
    EXPECT_EQ(record.find("schema")->string(), "bat-flight-v1");
    EXPECT_EQ(record.find("reason")->string(), "explicit-test");
    for (const char* section : {"ranks", "threads", "subsystems", "trace_tail"}) {
        const Value* v = record.find(section);
        ASSERT_NE(v, nullptr) << section;
        EXPECT_TRUE(v->is_array()) << section;
    }
    EXPECT_NE(record.find("metrics"), nullptr);
}

TEST(HealthUnitTest, RunReportAccountsMessagesAndRankValues) {
    fresh_health();
    obs::note_send(0, 128);
    obs::note_recv(1, 96);
    obs::note_collective(0);
    obs::note_leaves_served(1, 3);
    obs::note_pool_task();
    obs::record_rank_value("unit.bytes", 1000);

    const Value report = obs::json::parse(obs::run_report_json());
    EXPECT_EQ(report.find("schema")->string(), "bat-report-v1");
    EXPECT_GT(report.find("run")->find("wall_seconds")->number(), 0.0);

    const Value* msgs = report.find("messages");
    ASSERT_NE(msgs, nullptr);
    EXPECT_EQ(msgs->find("sends")->number(), 1.0);
    EXPECT_EQ(msgs->find("send_bytes")->number(), 128.0);
    EXPECT_EQ(msgs->find("recvs")->number(), 1.0);
    EXPECT_EQ(msgs->find("recv_bytes")->number(), 96.0);
    EXPECT_EQ(msgs->find("collectives")->number(), 1.0);
    EXPECT_EQ(msgs->find("leaves_served")->number(), 3.0);
    EXPECT_EQ(report.find("pool")->find("tasks")->number(), 1.0);

    const Value* io = report.find("io")->find("unit.bytes");
    ASSERT_NE(io, nullptr);
    EXPECT_EQ(io->find("total")->number(), 1000.0);

    // reset drops every accumulator.
    obs::reset_run_report();
    const Value empty = obs::json::parse(obs::run_report_json());
    EXPECT_EQ(empty.find("messages")->find("sends")->number(), 0.0);
    EXPECT_EQ(empty.find("io")->find("unit.bytes"), nullptr);
}

TEST(HealthEnvTest, EnvArmedWatchdogAndReportExitCleanly) {
    // Regression: BAT_WATCHDOG_SEC arming used to call start_watchdog()
    // from inside ensure_init's call_once body, re-entering call_once on
    // its own flag and deadlocking the first health call of any env-armed
    // process. Re-exec this binary with the full env surface armed: a
    // fresh process must start the watchdog, run, and exit cleanly with
    // the atexit hook writing the run report.
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    ASSERT_GT(n, 0);
    exe[n] = '\0';

    const testing::TempDir dir;
    const auto report_path = dir.path() / "report.json";
    std::ostringstream cmd;
    cmd << "BAT_WATCHDOG_SEC=60 BAT_REPORT_FILE='" << report_path.string()
        << "' BAT_FLIGHT_RECORD_FILE='" << (dir.path() / "flight.json").string()
        << "' timeout 30 '" << exe
        << "' --gtest_filter=HealthUnitTest.RunReportAccountsMessagesAndRankValues"
        << " >/dev/null 2>&1";
    const int status = std::system(cmd.str().c_str());
    ASSERT_TRUE(WIFEXITED(status));
    // 124 is timeout(1)'s exit code: the env-armed process hung.
    EXPECT_EQ(WEXITSTATUS(status), 0);

    ASSERT_TRUE(std::filesystem::exists(report_path));
    EXPECT_EQ(parse_file(report_path).find("schema")->string(), "bat-report-v1");
}

TEST(WatchdogTest, StartStopIsIdempotent) {
    fresh_health();
    EXPECT_FALSE(obs::watchdog_running());

    obs::WatchdogOptions opts;
    opts.interval = 50ms;
    obs::start_watchdog(opts);
    EXPECT_TRUE(obs::watchdog_running());
    EXPECT_TRUE(obs::span_tracking_enabled());
    obs::start_watchdog(opts);  // restart while running
    EXPECT_TRUE(obs::watchdog_running());

    obs::stop_watchdog();
    EXPECT_FALSE(obs::watchdog_running());
    obs::stop_watchdog();  // no-op
    EXPECT_FALSE(obs::watchdog_running());
    EXPECT_EQ(obs::watchdog_trips(), 0u);
}

// ---- stall detection ------------------------------------------------------

TEST(WatchdogTest, NeverMatchedRecvIsDiagnosedWithStuckRankAndFlightRecord) {
    fresh_health();
    const testing::TempDir dir;
    const auto flight_path = dir.path() / "flight.json";

    std::mutex mu;
    std::vector<obs::StallReport> reports;
    obs::WatchdogOptions opts;
    opts.interval = 100ms;
    opts.stale_intervals = 2;
    opts.flight_record_path = flight_path;
    opts.on_stall = [&](const obs::StallReport& r) {
        const std::lock_guard<std::mutex> lock(mu);
        reports.push_back(r);
    };
    obs::start_watchdog(opts);

    vmpi::Runtime::run(4, [](vmpi::Comm& comm) {
        if (comm.rank() == 1) {
            // Blocks until rank 0 finally sends; the watchdog must fire in
            // the interim and name this rank with its pending irecv.
            vmpi::Bytes buf;
            comm.irecv(0, 9, buf).wait();
        } else if (comm.rank() == 0) {
            std::this_thread::sleep_for(1200ms);
            const std::array<std::byte, 4> payload{};
            comm.send(1, 9, payload);
        }
        // Ranks 2 and 3 return immediately: only genuinely active ranks may
        // be reported stuck.
    });
    obs::stop_watchdog();

    // One stall, one diagnosis (re-armed only by progress).
    EXPECT_EQ(obs::watchdog_trips(), 1u);
    const std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(reports.size(), 1u);
    const obs::StallReport& report = reports.front();
    EXPECT_EQ(report.stuck_ranks, (std::vector<int>{0, 1}));
    EXPECT_NE(report.text.find("rank 1 stuck"), std::string::npos) << report.text;
    EXPECT_NE(report.text.find("irecv(src=0, tag=9)"), std::string::npos)
        << report.text;

    ASSERT_TRUE(std::filesystem::exists(flight_path));
    const Value record = parse_file(flight_path);
    EXPECT_EQ(record.find("schema")->string(), "bat-flight-v1");
    EXPECT_EQ(record.find("reason")->string(), "watchdog");
    EXPECT_TRUE(contains_rank(flight_stuck_ranks(record), 1));

    const Value* ranks = record.find("ranks");
    ASSERT_NE(ranks, nullptr);
    bool saw_rank1 = false;
    for (const Value& r : ranks->array()) {
        if (static_cast<int>(r.find("rank")->number()) != 1) {
            continue;
        }
        saw_rank1 = true;
        EXPECT_NE(r.find("blocked_on")->string().find("irecv"), std::string::npos);
    }
    EXPECT_TRUE(saw_rank1);
}

TEST(WatchdogTest, StalledReadRoundNamesLateRankAndOpenSpans) {
    fresh_health();
    const testing::TempDir dir;
    const auto flight_path = dir.path() / "flight.json";

    const int nranks = 4;
    const GridDecomp decomp = grid_decomp_3d(nranks, kDomain);
    const ParticleSet global = make_uniform_particles(kDomain, 8'000, 2, 11);
    const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);

    std::mutex mu;
    std::vector<obs::StallReport> reports;
    obs::WatchdogOptions opts;
    opts.interval = 100ms;
    opts.stale_intervals = 2;
    opts.flight_record_path = flight_path;
    opts.on_stall = [&](const obs::StallReport& r) {
        const std::lock_guard<std::mutex> lock(mu);
        reports.push_back(r);
    };
    obs::start_watchdog(opts);

    std::atomic<std::uint64_t> particles_read{0};
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        const int r = comm.rank();
        WriterConfig config;
        config.directory = dir.path();
        config.basename = "stall";
        config.tree.target_file_size = 16 << 10;
        const WriteResult wr = write_particles(
            comm, per_rank[static_cast<std::size_t>(r)], decomp.rank_box(r), config);
        if (r == 3) {
            // The late rank: the other three enter the read round and spin
            // in read.serve waiting for rank 3's requests and barrier.
            std::this_thread::sleep_for(2000ms);
        }
        const ReadResult rr =
            read_particles(comm, wr.metadata_path, decomp.rank_read_box(r));
        particles_read += rr.particles.count();
    });
    obs::stop_watchdog();

    EXPECT_GE(obs::watchdog_trips(), 1u);
    const std::lock_guard<std::mutex> lock(mu);
    ASSERT_GE(reports.size(), 1u);
    // The read-round stall: rank 3 stuck with the others parked in
    // read.serve (their open span stacks name the phase).
    bool diagnosed = false;
    for (const obs::StallReport& report : reports) {
        if (contains_rank(report.stuck_ranks, 3) &&
            report.text.find("read.serve") != std::string::npos) {
            diagnosed = true;
        }
    }
    EXPECT_TRUE(diagnosed) << reports.front().text;

    // The stall resolved once rank 3 joined: every rank finished its read.
    EXPECT_GT(particles_read.load(), 0u);

    ASSERT_TRUE(std::filesystem::exists(flight_path));
    const Value record = parse_file(flight_path);
    EXPECT_EQ(record.find("schema")->string(), "bat-flight-v1");
    EXPECT_FALSE(flight_stuck_ranks(record).empty());
    bool has_vmpi = false;
    for (const Value& sub : record.find("subsystems")->array()) {
        if (sub.find("name")->string() == "vmpi") {
            has_vmpi = true;
            EXPECT_NE(sub.find("state")->find("pending"), nullptr);
        }
    }
    EXPECT_TRUE(has_vmpi);
    bool serve_span_open = false;
    for (const Value& thread : record.find("threads")->array()) {
        for (const Value& span : thread.find("spans")->array()) {
            if (span.string() == "read.serve") {
                serve_span_open = true;
            }
        }
    }
    EXPECT_TRUE(serve_span_open);
}

// ---- clean-run report -----------------------------------------------------

TEST(RunReportTest, CleanTracedRunMatchesPhaseTimingsWithinFivePercent) {
    fresh_health();
    obs::set_trace_enabled(true);

    // Armed with production-shaped settings: a clean run must never trip.
    obs::WatchdogOptions opts;
    opts.interval = 1000ms;
    opts.stale_intervals = 5;
    obs::start_watchdog(opts);

    const testing::TempDir dir;
    const int nranks = 4;
    const GridDecomp decomp = grid_decomp_3d(nranks, kDomain);
    const ParticleSet global = make_uniform_particles(kDomain, 24'000, 3, 7);
    const std::vector<ParticleSet> per_rank = partition_particles(global, decomp);
    ThreadPool pool(2);

    std::vector<WritePhaseTimings> wt(nranks);
    std::vector<ReadPhaseTimings> rt(nranks);
    std::atomic<std::uint64_t> bytes_written{0};
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        const int r = comm.rank();
        WriterConfig config;
        config.directory = dir.path();
        config.basename = "clean";
        config.tree.target_file_size = 64 << 10;
        config.pool = &pool;
        const WriteResult wr = write_particles(
            comm, per_rank[static_cast<std::size_t>(r)], decomp.rank_box(r), config);
        wt[static_cast<std::size_t>(r)] = wr.timings;
        bytes_written += wr.bytes_written;
        const ReadResult rr =
            read_particles(comm, wr.metadata_path, decomp.rank_read_box(r));
        rt[static_cast<std::size_t>(r)] = rr.timings;
    });
    obs::stop_watchdog();
    obs::set_trace_enabled(false);

    EXPECT_EQ(obs::watchdog_trips(), 0u);

    const Value report = obs::json::parse(obs::run_report_json());
    EXPECT_EQ(report.find("schema")->string(), "bat-report-v1");
    const Value* run = report.find("run");
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->find("ranks")->number(), static_cast<double>(nranks));
    EXPECT_GT(run->find("wall_seconds")->number(), 0.0);
    EXPECT_EQ(run->find("watchdog")->find("trips")->number(), 0.0);

    const Value* phases = report.find("phases");
    ASSERT_NE(phases, nullptr);
    // The acceptance bar: per-phase report seconds agree with the
    // WritePhaseTimings / ReadPhaseTimings structs within 5% (they come
    // from the same PhaseSpan closures, so this is exact by construction).
    const auto check_phase = [&](const std::string& name, double expected_sum) {
        const Value* phase = phases->find(name);
        ASSERT_NE(phase, nullptr) << name;
        const double seconds = phase->find("seconds")->number();
        EXPECT_NEAR(seconds, expected_sum, 0.05 * expected_sum + 1e-6) << name;
        const double min_s = phase->find("min_s")->number();
        const double mean_s = phase->find("mean_s")->number();
        const double max_s = phase->find("max_s")->number();
        EXPECT_LE(min_s, mean_s) << name;
        EXPECT_LE(mean_s, max_s) << name;
        EXPECT_GE(phase->find("calls")->number(), 1.0) << name;
    };
    double gather = 0;
    double tree_build = 0;
    double scatter = 0;
    double transfer = 0;
    double bat_build = 0;
    double file_write = 0;
    double metadata = 0;
    for (const WritePhaseTimings& t : wt) {
        gather += t.gather;
        tree_build += t.tree_build;
        scatter += t.scatter;
        transfer += t.transfer;
        bat_build += t.bat_build;
        file_write += t.file_write;
        metadata += t.metadata;
    }
    check_phase("write.gather", gather);
    check_phase("write.tree_build", tree_build);
    check_phase("write.scatter", scatter);
    check_phase("write.transfer", transfer);
    check_phase("write.bat_build", bat_build);
    check_phase("write.file_write", file_write);
    check_phase("write.metadata", metadata);

    double r_metadata = 0;
    double r_request = 0;
    double r_serve = 0;
    double r_merge = 0;
    double r_local = 0;
    for (const ReadPhaseTimings& t : rt) {
        r_metadata += t.metadata;
        r_request += t.request;
        r_serve += t.serve;
        r_merge += t.merge;
        r_local += t.local;
    }
    check_phase("read.metadata", r_metadata);
    check_phase("read.request", r_request);
    check_phase("read.serve", r_serve);
    check_phase("read.merge", r_merge);
    check_phase("read.local", r_local);

    // Traffic and volume sections reflect the pipeline.
    const Value* msgs = report.find("messages");
    ASSERT_NE(msgs, nullptr);
    EXPECT_GT(msgs->find("sends")->number(), 0.0);
    EXPECT_GT(msgs->find("recv_bytes")->number(), 0.0);
    EXPECT_GT(msgs->find("collectives")->number(), 0.0);
    const Value* io_written = report.find("io")->find("write.bytes_written");
    ASSERT_NE(io_written, nullptr);
    EXPECT_EQ(io_written->find("total")->number(),
              static_cast<double>(bytes_written.load()));
    EXPECT_EQ(io_written->find("ranks")->number(), static_cast<double>(nranks));
    ASSERT_NE(report.find("io")->find("read.bytes_read"), nullptr);

    // The file path ("%p" expanded) round-trips through the same schema.
    ASSERT_TRUE(obs::write_run_report(dir.path() / "report_%p.json"));
    const auto expanded =
        dir.path() / ("report_" + std::to_string(::getpid()) + ".json");
    ASSERT_TRUE(std::filesystem::exists(expanded));
    EXPECT_EQ(parse_file(expanded).find("schema")->string(), "bat-report-v1");
}

}  // namespace
}  // namespace bat
