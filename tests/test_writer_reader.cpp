// Integration tests for the full two-phase write + read pipelines (paper
// §III + §IV) over the virtual MPI runtime: multi-rank round trips across
// strategies, target sizes, rank counts, and read/write rank mismatches.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iterator>
#include <mutex>

#include "io/reader.hpp"
#include "io/writer.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"
#include "workloads/decomposition.hpp"
#include "workloads/mixtures.hpp"
#include "workloads/uniform.hpp"

namespace bat {
namespace {

const Box kDomain({0, 0, 0}, {4, 4, 4});

struct Scenario {
    GridDecomp decomp;
    ParticleSet global;
    std::vector<ParticleSet> per_rank;

    Scenario(int nranks, std::size_t n, std::size_t nattrs, std::uint64_t seed,
          bool clustered = false) {
        decomp = grid_decomp_3d(nranks, kDomain);
        if (clustered) {
            const auto blobs = make_random_blobs(kDomain, 4, seed);
            global = make_mixture_particles(kDomain, blobs, n, nattrs, seed);
        } else {
            global = make_uniform_particles(kDomain, n, nattrs, seed);
        }
        per_rank = partition_particles(global, decomp);
    }
};

WriterConfig writer_config(const std::filesystem::path& dir, AggStrategy strategy,
                           std::uint64_t target) {
    WriterConfig config;
    config.strategy = strategy;
    config.tree.target_file_size = target;
    config.directory = dir;
    config.basename = "ts";
    return config;
}

/// Run the full write+read cycle on `nranks` virtual MPI ranks and verify
/// the read-back population matches what was written.
void round_trip(AggStrategy strategy, int nranks, std::uint64_t target, std::size_t n,
                std::size_t nattrs, std::uint64_t seed, int read_ranks = -1) {
    const testing::TempDir dir;
    Scenario setup(nranks, n, nattrs, seed);
    const auto expected = testing::particle_keys(setup.global);

    std::filesystem::path meta_path;
    vmpi::Runtime::run(nranks, [&](vmpi::Comm& comm) {
        const WriterConfig config = writer_config(dir.path(), strategy, target);
        const WriteResult result = write_particles(
            comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
            setup.decomp.rank_box(comm.rank()), config);
        if (comm.rank() == 0) {
            meta_path = result.metadata_path;
        }
    });
    ASSERT_FALSE(meta_path.empty());

    // Read back, possibly with a different rank count (paper §IV-A).
    if (read_ranks < 0) {
        read_ranks = nranks;
    }
    const GridDecomp read_decomp = grid_decomp_3d(read_ranks, kDomain);
    std::mutex mutex;
    ParticleSet all(setup.global.attr_names());
    std::vector<std::vector<std::byte>> serial_bytes(static_cast<std::size_t>(read_ranks));
    vmpi::Runtime::run(read_ranks, [&](vmpi::Comm& comm) {
        const ReadResult result =
            read_particles(comm, meta_path, read_decomp.rank_read_box(comm.rank()));
        std::lock_guard<std::mutex> lock(mutex);
        serial_bytes[static_cast<std::size_t>(comm.rank())] = result.particles.to_bytes();
        all.append(result.particles);
    });
    EXPECT_EQ(testing::particle_keys(all), expected)
        << "strategy=" << to_string(strategy) << " nranks=" << nranks
        << " read_ranks=" << read_ranks << " target=" << target;

    // Threaded serving must be byte-identical per rank to the serial path
    // (responses are keyed by request id, not completion order).
    ThreadPool pool(2);
    vmpi::Runtime::run(read_ranks, [&](vmpi::Comm& comm) {
        ReaderConfig rc;
        rc.pool = &pool;
        const ReadResult result =
            read_particles(comm, meta_path, read_decomp.rank_read_box(comm.rank()), rc);
        const std::vector<std::byte> bytes = result.particles.to_bytes();
        std::lock_guard<std::mutex> lock(mutex);
        EXPECT_EQ(bytes, serial_bytes[static_cast<std::size_t>(comm.rank())])
            << "threaded read diverged on rank " << comm.rank();
    });
}

TEST(WriterReaderTest, AdaptiveSmall) { round_trip(AggStrategy::adaptive, 4, 64 << 10, 5'000, 2, 1); }

TEST(WriterReaderTest, AdaptiveSingleRank) {
    round_trip(AggStrategy::adaptive, 1, 1 << 20, 2'000, 2, 2);
}

TEST(WriterReaderTest, AugSmall) { round_trip(AggStrategy::aug, 4, 64 << 10, 5'000, 2, 3); }

TEST(WriterReaderTest, FilePerProcessSmall) {
    round_trip(AggStrategy::file_per_process, 4, 64 << 10, 5'000, 2, 4);
}

TEST(WriterReaderTest, ReadAtFewerRanks) {
    round_trip(AggStrategy::adaptive, 8, 32 << 10, 8'000, 2, 5, /*read_ranks=*/2);
}

TEST(WriterReaderTest, ReadAtMoreRanks) {
    round_trip(AggStrategy::adaptive, 4, 32 << 10, 8'000, 2, 6, /*read_ranks=*/16);
}

TEST(WriterReaderTest, ReadAtOneRank) {
    round_trip(AggStrategy::adaptive, 8, 32 << 10, 6'000, 3, 7, /*read_ranks=*/1);
}

class StrategyMatrix
    : public ::testing::TestWithParam<std::tuple<AggStrategy, int, std::uint64_t>> {};

TEST_P(StrategyMatrix, RoundTrips) {
    const auto [strategy, nranks, target] = GetParam();
    round_trip(strategy, nranks, target, 6'000, 2,
               static_cast<std::uint64_t>(nranks) * 31 + target % 97);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StrategyMatrix,
    ::testing::Combine(::testing::Values(AggStrategy::adaptive, AggStrategy::aug,
                                         AggStrategy::file_per_process),
                       ::testing::Values(2, 8, 13),
                       ::testing::Values(std::uint64_t{16} << 10, std::uint64_t{256} << 10)));

TEST(WriterReaderTest, ClusteredDataRoundTrips) {
    const testing::TempDir dir;
    Scenario setup(8, 12'000, 3, 11, /*clustered=*/true);
    const auto expected = testing::particle_keys(setup.global);
    std::filesystem::path meta_path;
    vmpi::Runtime::run(8, [&](vmpi::Comm& comm) {
        const WriterConfig config =
            writer_config(dir.path(), AggStrategy::adaptive, 32 << 10);
        const WriteResult result = write_particles(
            comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
            setup.decomp.rank_box(comm.rank()), config);
        if (comm.rank() == 0) {
            meta_path = result.metadata_path;
        }
    });
    std::mutex mutex;
    ParticleSet all(setup.global.attr_names());
    vmpi::Runtime::run(8, [&](vmpi::Comm& comm) {
        const ReadResult r =
            read_particles(comm, meta_path, setup.decomp.rank_read_box(comm.rank()));
        std::lock_guard<std::mutex> lock(mutex);
        all.append(r.particles);
    });
    EXPECT_EQ(testing::particle_keys(all), expected);
}

TEST(WriterReaderTest, EmptyRanksAreFine) {
    // All particles in one octant: most ranks own nothing.
    const testing::TempDir dir;
    const GridDecomp decomp = grid_decomp_3d(8, kDomain);
    const Box corner({0, 0, 0}, {1.9f, 1.9f, 1.9f});
    ParticleSet global = make_uniform_particles(corner, 4'000, 2, 13);
    auto per_rank = partition_particles(global, decomp);
    const auto expected = testing::particle_keys(global);
    std::filesystem::path meta_path;
    vmpi::Runtime::run(8, [&](vmpi::Comm& comm) {
        const WriterConfig config =
            writer_config(dir.path(), AggStrategy::adaptive, 16 << 10);
        const WriteResult result =
            write_particles(comm, per_rank[static_cast<std::size_t>(comm.rank())],
                            decomp.rank_box(comm.rank()), config);
        if (comm.rank() == 0) {
            meta_path = result.metadata_path;
        }
    });
    std::mutex mutex;
    ParticleSet all(global.attr_names());
    vmpi::Runtime::run(8, [&](vmpi::Comm& comm) {
        const ReadResult r = read_particles(comm, meta_path, decomp.rank_read_box(comm.rank()));
        std::lock_guard<std::mutex> lock(mutex);
        all.append(r.particles);
    });
    EXPECT_EQ(testing::particle_keys(all), expected);
}

TEST(WriterReaderTest, NumLeavesRespondsToTargetSize) {
    const testing::TempDir dir;
    Scenario setup(8, 20'000, 2, 17);
    int leaves_small = 0;
    int leaves_large = 0;
    vmpi::Runtime::run(8, [&](vmpi::Comm& comm) {
        WriterConfig config = writer_config(dir.path(), AggStrategy::adaptive, 8 << 10);
        config.basename = "small";
        const WriteResult small = write_particles(
            comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
            setup.decomp.rank_box(comm.rank()), config);
        config.tree.target_file_size = 1 << 20;
        config.basename = "large";
        const WriteResult large = write_particles(
            comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
            setup.decomp.rank_box(comm.rank()), config);
        if (comm.rank() == 0) {
            leaves_small = small.num_leaves;
            leaves_large = large.num_leaves;
        }
    });
    EXPECT_GT(leaves_small, leaves_large);
    EXPECT_EQ(leaves_large, 1);
}

TEST(WriterReaderTest, TimingsArePopulated) {
    const testing::TempDir dir;
    Scenario setup(4, 4'000, 2, 19);
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        const WriterConfig config =
            writer_config(dir.path(), AggStrategy::adaptive, 32 << 10);
        const WriteResult result = write_particles(
            comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
            setup.decomp.rank_box(comm.rank()), config);
        EXPECT_GT(result.timings.total(), 0.0);
        EXPECT_GE(result.timings.transfer, 0.0);
    });
}

TEST(WriterReaderTest, PhaseTimingsSelfConsistentAcrossStrategies) {
    // The span-based phase bookkeeping must hold for every aggregation
    // strategy: each phase non-negative, and the per-rank phase sum bounded
    // by the wall-clock time of the collective (plus scheduling slack).
    for (const AggStrategy strategy :
         {AggStrategy::adaptive, AggStrategy::aug, AggStrategy::file_per_process}) {
        const testing::TempDir dir;
        Scenario setup(6, 6'000, 2, 31);
        std::mutex mutex;
        double max_rank_total = 0;
        const auto wall_start = std::chrono::steady_clock::now();
        vmpi::Runtime::run(6, [&](vmpi::Comm& comm) {
            const WriterConfig config = writer_config(dir.path(), strategy, 32 << 10);
            const WriteResult result = write_particles(
                comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
                setup.decomp.rank_box(comm.rank()), config);
            const WritePhaseTimings& t = result.timings;
            for (const double phase : {t.gather, t.tree_build, t.scatter, t.transfer,
                                       t.bat_build, t.file_write, t.metadata}) {
                EXPECT_GE(phase, 0.0) << to_string(strategy);
            }
            EXPECT_GT(t.total(), 0.0) << to_string(strategy);
            std::lock_guard<std::mutex> lock(mutex);
            max_rank_total = std::max(max_rank_total, t.total());
        });
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - wall_start)
                                .count();
        // Phases are disjoint spans on the rank's thread, so no rank's sum
        // can exceed the collective's wall time (plus scheduling slack).
        EXPECT_LE(max_rank_total, wall + 0.5) << to_string(strategy);
    }
}

TEST(WriterReaderTest, SerialWriterMatchesParallelPopulation) {
    const testing::TempDir dir;
    Scenario setup(6, 9'000, 2, 23);
    std::vector<Box> bounds;
    for (int r = 0; r < 6; ++r) {
        bounds.push_back(setup.decomp.rank_box(r));
    }
    WriterConfig config = writer_config(dir.path() / "serial", AggStrategy::adaptive, 32 << 10);
    const WriteResult result = write_particles_serial(setup.per_rank, bounds, config);
    EXPECT_GT(result.num_leaves, 0);

    // Read everything back through one reading rank.
    ParticleSet all(setup.global.attr_names());
    vmpi::Runtime::run(1, [&](vmpi::Comm& comm) {
        const ReadResult r = read_particles(comm, result.metadata_path, kDomain);
        all.append(r.particles);
    });
    EXPECT_EQ(testing::particle_keys(all), testing::particle_keys(setup.global));
}

TEST(WriterReaderTest, ReadAggregatorAssignmentRules) {
    // More ranks than files: spread through rank space, distinct.
    const std::vector<int> spread = assign_read_aggregators(4, 16);
    EXPECT_EQ(spread, (std::vector<int>{0, 4, 8, 12}));
    // Fewer ranks than files: contiguous blocks so spatially neighboring
    // leaves share an aggregator (the write phase orders leaves along the
    // aggregation tree); the remainder goes to the first ranks.
    const std::vector<int> blocks = assign_read_aggregators(7, 3);
    EXPECT_EQ(blocks, (std::vector<int>{0, 0, 0, 1, 1, 2, 2}));
    // Equal: identity-ish spread.
    const std::vector<int> eq = assign_read_aggregators(4, 4);
    EXPECT_EQ(eq, (std::vector<int>{0, 1, 2, 3}));
    // Block-assignment properties at scale: monotone non-decreasing (so
    // blocks are contiguous), every rank used, and per-rank loads balanced
    // to within one leaf.
    const int num_leaves = 103;
    const int nranks = 8;
    const std::vector<int> agg = assign_read_aggregators(num_leaves, nranks);
    std::vector<int> load(nranks, 0);
    for (std::size_t i = 0; i < agg.size(); ++i) {
        ASSERT_GE(agg[i], 0);
        ASSERT_LT(agg[i], nranks);
        if (i > 0) {
            EXPECT_GE(agg[i], agg[i - 1]);
        }
        ++load[static_cast<std::size_t>(agg[i])];
    }
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    EXPECT_GE(*lo, 1);
    EXPECT_LE(*hi - *lo, 1);
}

TEST(WriterReaderTest, SpatialSubsetReadReturnsOnlyOverlap) {
    const testing::TempDir dir;
    Scenario setup(4, 10'000, 2, 29);
    std::filesystem::path meta_path;
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        const WriterConfig config =
            writer_config(dir.path(), AggStrategy::adaptive, 32 << 10);
        const WriteResult result = write_particles(
            comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
            setup.decomp.rank_box(comm.rank()), config);
        if (comm.rank() == 0) {
            meta_path = result.metadata_path;
        }
    });
    const Box window({0.5f, 0.5f, 0.5f}, {2.5f, 2.5f, 2.5f});
    ParticleSet got(setup.global.attr_names());
    vmpi::Runtime::run(1, [&](vmpi::Comm& comm) {
        ReaderConfig rc;
        rc.half_open = false;
        const ReadResult r = read_particles(comm, meta_path, window, rc);
        got.append(r.particles);
    });
    const auto expected_idx =
        testing::brute_force_query(setup.global, window, /*inclusive_upper=*/false);
    EXPECT_EQ(got.count(), expected_idx.size());
}

// ---- zero-copy transfer path ----------------------------------------------

TEST(WriterReaderTest, DeserializeIntoMatchesFromBytes) {
    const ParticleSet src = make_uniform_particles(kDomain, 5'000, 3, 31);
    const std::vector<std::byte> wire = src.to_bytes();

    // The aggregator path: pre-sized set, payload placed at an offset.
    ParticleSet merged(src.attr_names());
    merged.resize(2 * src.count());
    EXPECT_EQ(merged.deserialize_into(wire, 0), src.count());
    EXPECT_EQ(merged.deserialize_into(wire, src.count()), src.count());
    for (std::size_t i = 0; i < src.count(); ++i) {
        ASSERT_EQ(merged.position(i), src.position(i));
        ASSERT_EQ(merged.position(src.count() + i), src.position(i));
    }
    for (std::size_t a = 0; a < src.num_attrs(); ++a) {
        for (std::size_t i = 0; i < src.count(); ++i) {
            ASSERT_EQ(merged.attr(a)[i], src.attr(a)[i]);
            ASSERT_EQ(merged.attr(a)[src.count() + i], src.attr(a)[i]);
        }
    }

    // append_from_bytes agrees with the old from_bytes + append path.
    ParticleSet appended(src.attr_names());
    EXPECT_EQ(appended.append_from_bytes(wire), src.count());
    const ParticleSet legacy = ParticleSet::from_bytes(wire);
    EXPECT_EQ(testing::particle_keys(appended), testing::particle_keys(legacy));
}

TEST(WriterReaderTest, RepeatedWritesProduceIdenticalFiles) {
    // The any-source transfer must not leak arrival order into file bytes:
    // two writes of the same data produce byte-identical leaf files.
    Scenario setup(8, 12'000, 2, 37);
    auto write_once = [&](const std::filesystem::path& dir) {
        vmpi::Runtime::run(8, [&](vmpi::Comm& comm) {
            const WriterConfig config = writer_config(dir, AggStrategy::adaptive, 32 << 10);
            write_particles(comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
                            setup.decomp.rank_box(comm.rank()), config);
        });
    };
    const testing::TempDir dir_a;
    const testing::TempDir dir_b;
    write_once(dir_a.path());
    write_once(dir_b.path());

    std::vector<std::filesystem::path> files_a;
    for (const auto& e : std::filesystem::directory_iterator(dir_a.path())) {
        files_a.push_back(e.path());
    }
    std::sort(files_a.begin(), files_a.end());
    ASSERT_FALSE(files_a.empty());
    for (const auto& fa : files_a) {
        const auto fb = dir_b.path() / fa.filename();
        ASSERT_TRUE(std::filesystem::exists(fb)) << fb;
        std::ifstream a(fa, std::ios::binary);
        std::ifstream b(fb, std::ios::binary);
        const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                                  std::istreambuf_iterator<char>());
        const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                                  std::istreambuf_iterator<char>());
        EXPECT_EQ(bytes_a, bytes_b) << fa.filename();
    }
}

TEST(WriterReaderTest, AnySourceTransferPassesProtocolValidation) {
    // The validator watches every send/recv: the rewritten any-source
    // transfer phase must finish with zero diagnostics and no deadlock.
    const testing::TempDir dir;
    Scenario setup(8, 10'000, 2, 41);
    const auto report = vmpi::Runtime::run_validated(8, [&](vmpi::Comm& comm) {
        const WriterConfig config = writer_config(dir.path(), AggStrategy::adaptive, 32 << 10);
        write_particles(comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
                        setup.decomp.rank_box(comm.rank()), config);
    });
    EXPECT_FALSE(report.deadlock);
    EXPECT_TRUE(report.rank_errors.empty());
    EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
    EXPECT_GT(report.sends, 0u);
}

TEST(WriterReaderTest, BytesWrittenIncludesMetadataFile) {
    // Sum of per-rank bytes_written must equal the bytes on disk — leaf
    // files plus the .batmeta (accounted on rank 0).
    const testing::TempDir dir;
    Scenario setup(4, 8'000, 2, 43);
    std::mutex mutex;
    std::uint64_t reported = 0;
    vmpi::Runtime::run(4, [&](vmpi::Comm& comm) {
        const WriterConfig config = writer_config(dir.path(), AggStrategy::adaptive, 32 << 10);
        const WriteResult result = write_particles(
            comm, setup.per_rank[static_cast<std::size_t>(comm.rank())],
            setup.decomp.rank_box(comm.rank()), config);
        std::lock_guard<std::mutex> lock(mutex);
        reported += result.bytes_written;
    });
    std::uint64_t on_disk = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir.path())) {
        on_disk += std::filesystem::file_size(e.path());
    }
    EXPECT_EQ(reported, on_disk);
}

}  // namespace
}  // namespace bat
