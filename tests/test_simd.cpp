// SIMD dispatch + equivalence tests (util/simd.hpp, util/morton.cpp): every
// vector tier the host supports must produce bit-identical results to the
// scalar reference for NaN-free input — the BAT determinism contract — and
// a whole BAT built with the dispatch forced to scalar must serialize to
// exactly the bytes the default build makes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/bat_builder.hpp"
#include "core/bat_file.hpp"
#include "util/morton.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "workloads/boiler.hpp"
#include "workloads/dambreak.hpp"

namespace bat {
namespace {

/// Run `fn` once per dispatch tier the host supports, from scalar up to
/// detected_level(), with the tier forced; always restores env-aware
/// dispatch afterwards.
template <typename Fn>
void for_each_level(Fn&& fn) {
    const int top = static_cast<int>(simd::detected_level());
    for (int l = 0; l <= top; ++l) {
        const auto level = static_cast<simd::Level>(l);
        simd::set_level_for_testing(level);
        fn(level);
    }
    simd::clear_level_for_testing();
}

TEST(SimdDispatch, EnvValueParse) {
    // Unset, empty and "0" leave SIMD on; any other value disables it.
    EXPECT_FALSE(simd::env_value_disables_simd(nullptr));
    EXPECT_FALSE(simd::env_value_disables_simd(""));
    EXPECT_FALSE(simd::env_value_disables_simd("0"));
    EXPECT_TRUE(simd::env_value_disables_simd("1"));
    EXPECT_TRUE(simd::env_value_disables_simd("true"));
    EXPECT_TRUE(simd::env_value_disables_simd("off"));
    EXPECT_TRUE(simd::env_value_disables_simd(" "));
}

TEST(SimdDispatch, TestOverrideClampsToDetected) {
    simd::set_level_for_testing(simd::Level::avx2);
    EXPECT_LE(static_cast<int>(simd::active_level()),
              static_cast<int>(simd::detected_level()));
    simd::set_level_for_testing(simd::Level::scalar);
    EXPECT_EQ(simd::active_level(), simd::Level::scalar);
    simd::clear_level_for_testing();
    EXPECT_LE(static_cast<int>(simd::active_level()),
              static_cast<int>(simd::detected_level()));
}

TEST(SimdDispatch, LevelNames) {
    EXPECT_STREQ(simd::level_name(simd::Level::scalar), "scalar");
    EXPECT_STREQ(simd::level_name(simd::Level::sse42_bmi2), "sse4.2+bmi2");
    EXPECT_STREQ(simd::level_name(simd::Level::avx2), "avx2");
}

// ---- Morton batch encode --------------------------------------------------

constexpr std::uint32_t kMaxCoord = (1u << kMortonBitsPerAxis) - 1;

TEST(SimdMorton, BatchMatchesScalarOnBoundaryCoords) {
    // Cross product of adversarial per-axis values: extremes, single bits
    // at both ends, alternating patterns.
    const std::vector<std::uint32_t> interesting = {
        0u, 1u, 2u, 3u, 0x155555u, 0x0AAAAAu, 0x100000u, 0x0FFFFFu,
        kMaxCoord, kMaxCoord - 1, kMaxCoord >> 1, 0x111111u};
    std::vector<std::uint32_t> xs;
    std::vector<std::uint32_t> ys;
    std::vector<std::uint32_t> zs;
    for (std::uint32_t x : interesting) {
        for (std::uint32_t y : interesting) {
            for (std::uint32_t z : interesting) {
                xs.push_back(x);
                ys.push_back(y);
                zs.push_back(z);
            }
        }
    }
    std::vector<std::uint64_t> expect(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        expect[i] = morton_encode(xs[i], ys[i], zs[i]);
    }
    for_each_level([&](simd::Level level) {
        std::vector<std::uint64_t> got(xs.size(), ~std::uint64_t{0});
        morton_encode_batch(xs.data(), ys.data(), zs.data(), xs.size(), got.data());
        EXPECT_EQ(got, expect) << "tier " << simd::level_name(level);
    });
}

TEST(SimdMorton, BatchMatchesScalarOnRandomCoords) {
    Pcg32 rng(0xC0DE);
    const std::size_t n = 10'000;
    std::vector<std::uint32_t> xs(n);
    std::vector<std::uint32_t> ys(n);
    std::vector<std::uint32_t> zs(n);
    std::vector<std::uint64_t> expect(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = rng.next_u32() & kMaxCoord;
        ys[i] = rng.next_u32() & kMaxCoord;
        zs[i] = rng.next_u32() & kMaxCoord;
        expect[i] = morton_encode(xs[i], ys[i], zs[i]);
    }
    for_each_level([&](simd::Level level) {
        // Tail lengths around the 8-wide vector width must all be exact.
        for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                      std::size_t{8}, std::size_t{9}, std::size_t{64},
                                      n}) {
            std::vector<std::uint64_t> got(len, ~std::uint64_t{0});
            morton_encode_batch(xs.data(), ys.data(), zs.data(), len, got.data());
            for (std::size_t i = 0; i < len; ++i) {
                ASSERT_EQ(got[i], expect[i])
                    << "tier " << simd::level_name(level) << " i=" << i;
            }
        }
    });
}

TEST(SimdMorton, PositionsMatchScalarIncludingClampAndDegenerateAxes) {
    // Positions straddling the box (clamped), exactly on faces, and a box
    // with a zero-extent axis (every cell on that axis quantizes to 0).
    const Box box({-1.0f, 2.0f, 0.0f}, {3.0f, 2.0f, 8.0f});  // y is flat
    Pcg32 rng(0xBEEF);
    const std::size_t n = 4'097;  // odd tail
    std::vector<float> xs(n);
    std::vector<float> ys(n);
    std::vector<float> zs(n);
    for (std::size_t i = 0; i < n; ++i) {
        // 20% of points land outside the box on purpose.
        xs[i] = -2.0f + 6.0f * static_cast<float>(rng.next_double());
        ys[i] = 1.0f + 2.0f * static_cast<float>(rng.next_double());
        zs[i] = -1.0f + 10.0f * static_cast<float>(rng.next_double());
    }
    xs[0] = box.lower.x;
    ys[0] = box.lower.y;
    zs[0] = box.lower.z;
    xs[1] = box.upper.x;
    ys[1] = box.upper.y;
    zs[1] = box.upper.z;
    std::vector<std::uint64_t> expect(n);
    for (std::size_t i = 0; i < n; ++i) {
        expect[i] = morton_encode_position({xs[i], ys[i], zs[i]}, box);
    }
    for_each_level([&](simd::Level level) {
        std::vector<std::uint64_t> got(n, ~std::uint64_t{0});
        morton_encode_positions(xs.data(), ys.data(), zs.data(), n, box, got.data());
        EXPECT_EQ(got, expect) << "tier " << simd::level_name(level);
    });
}

// ---- bitmap binning -------------------------------------------------------

TEST(SimdBinning, BatchMatchesBinOfAcrossTiers) {
    Pcg32 rng(0xB1B5);
    std::vector<double> values(3'001);
    for (double& v : values) {
        v = -5.0 + 13.0 * rng.next_double();
    }
    // Values exactly on edges exercise the <= boundary; out-of-range values
    // exercise the clamp.
    values[0] = -5.0;
    values[1] = 8.0;
    values[2] = -100.0;
    values[3] = 100.0;
    for (const BinEdges& edges :
         {equal_width_edges(-5.0, 8.0), equal_depth_edges(values)}) {
        values[4] = edges[7];  // exact interior edge
        std::vector<std::uint8_t> expect(values.size());
        std::uint32_t expect_bits = 0;
        for (std::size_t i = 0; i < values.size(); ++i) {
            expect[i] = static_cast<std::uint8_t>(bin_of(values[i], edges));
            expect_bits |= 1u << expect[i];
        }
        for_each_level([&](simd::Level level) {
            for (const std::size_t len :
                 {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
                  std::size_t{5}, std::size_t{8}, values.size()}) {
                std::vector<std::uint8_t> got(len, 0xFF);
                simd::bin_values_batch(values.data(), len, edges.data(), got.data());
                for (std::size_t i = 0; i < len; ++i) {
                    ASSERT_EQ(got[i], expect[i])
                        << "tier " << simd::level_name(level) << " i=" << i;
                }
            }
            EXPECT_EQ(simd::bin_bitmap_batch(values.data(), values.size(), edges.data()),
                      expect_bits)
                << "tier " << simd::level_name(level);
        });
    }
}

// ---- min/max reductions ---------------------------------------------------

TEST(SimdMinmax, F64F32Pos4MatchScalarAndCanonicalizeZeros) {
    Pcg32 rng(0x5EED);
    const std::size_t n = 1'027;
    std::vector<double> d(n);
    std::vector<float> f(n);
    std::vector<float> pos4(4 * n);
    for (std::size_t i = 0; i < n; ++i) {
        d[i] = -3.0 + 6.0 * rng.next_double();
        f[i] = static_cast<float>(d[i]);
        pos4[4 * i] = f[i];
        pos4[4 * i + 1] = -f[i];
        pos4[4 * i + 2] = f[i] * 0.5f;
        // Lane 3 holds garbage bits (the builder's rank word) and must be
        // ignored by minmax_pos4.
        std::memcpy(&pos4[4 * i + 3], &i, sizeof(float));
    }
    // Mixed signed zeros: every tier must canonicalize to +0.0.
    d[5] = -0.0;
    f[5] = -0.0f;
    pos4[4 * 5] = -0.0f;
    pos4[4 * 5 + 1] = -0.0f;
    pos4[4 * 5 + 2] = -0.0f;

    struct Ref {
        double dlo, dhi;
        float flo, fhi;
        float plo[3], phi[3];
    } ref{};
    simd::set_level_for_testing(simd::Level::scalar);
    simd::minmax_f64(d.data(), n, &ref.dlo, &ref.dhi);
    simd::minmax_f32(f.data(), n, &ref.flo, &ref.fhi);
    simd::minmax_pos4(pos4.data(), n, ref.plo, ref.phi);
    simd::clear_level_for_testing();

    for_each_level([&](simd::Level level) {
        for (const std::size_t len : {std::size_t{1}, std::size_t{2}, std::size_t{15},
                                      std::size_t{16}, std::size_t{17}, n}) {
            double dlo = 0;
            double dhi = 0;
            simd::minmax_f64(d.data(), len, &dlo, &dhi);
            float flo = 0;
            float fhi = 0;
            simd::minmax_f32(f.data(), len, &flo, &fhi);
            float plo[3];
            float phi[3];
            simd::minmax_pos4(pos4.data(), len, plo, phi);
            // Scalar-recompute the reference for this length.
            double rdlo = d[0] + 0.0;
            double rdhi = rdlo;
            float rflo = f[0] + 0.0f;
            float rfhi = rflo;
            float rplo[3];
            float rphi[3];
            for (int c = 0; c < 3; ++c) {
                rplo[c] = rphi[c] = pos4[static_cast<std::size_t>(c)] + 0.0f;
            }
            for (std::size_t i = 1; i < len; ++i) {
                rdlo = std::min(rdlo, d[i] + 0.0);
                rdhi = std::max(rdhi, d[i] + 0.0);
                rflo = std::min(rflo, f[i] + 0.0f);
                rfhi = std::max(rfhi, f[i] + 0.0f);
                for (int c = 0; c < 3; ++c) {
                    const float v = pos4[4 * i + static_cast<std::size_t>(c)] + 0.0f;
                    rplo[c] = std::min(rplo[c], v);
                    rphi[c] = std::max(rphi[c], v);
                }
            }
            // Bitwise comparison: -0.0 vs +0.0 must not slip through.
            EXPECT_EQ(std::memcmp(&dlo, &rdlo, sizeof dlo), 0)
                << "tier " << simd::level_name(level) << " len=" << len;
            EXPECT_EQ(std::memcmp(&dhi, &rdhi, sizeof dhi), 0);
            EXPECT_EQ(std::memcmp(&flo, &rflo, sizeof flo), 0);
            EXPECT_EQ(std::memcmp(&fhi, &rfhi, sizeof fhi), 0);
            EXPECT_EQ(std::memcmp(plo, rplo, sizeof rplo), 0);
            EXPECT_EQ(std::memcmp(phi, rphi, sizeof rphi), 0);
        }
    });
}

TEST(SimdMinmax, AllNegativeZerosCanonicalize) {
    const std::vector<double> zeros(37, -0.0);
    for_each_level([&](simd::Level level) {
        double lo = 1;
        double hi = 1;
        simd::minmax_f64(zeros.data(), zeros.size(), &lo, &hi);
        EXPECT_FALSE(std::signbit(lo)) << "tier " << simd::level_name(level);
        EXPECT_FALSE(std::signbit(hi)) << "tier " << simd::level_name(level);
    });
}

// ---- whole-build byte identity --------------------------------------------

/// serialize_bat bytes of a build with the dispatch forced to `level`.
std::vector<std::byte> build_bytes(const ParticleSet& particles, BinningScheme binning,
                                   simd::Level level) {
    BatConfig config;
    config.seed = 17;
    config.binning = binning;
    simd::set_level_for_testing(level);
    ParticleSet copy = particles;
    const BatData bat = build_bat(std::move(copy), config);
    simd::clear_level_for_testing();
    return serialize_bat(bat);
}

TEST(SimdByteIdentity, ForcedScalarBuildSerializesIdentically) {
    // The full determinism contract on the two paper workloads: the BAT a
    // vector tier produces must be byte-for-byte the scalar tier's BAT.
    BoilerConfig boiler;
    boiler.particles_at_start = 30'000;
    boiler.particles_at_end = 60'000;
    DamBreakConfig dam;
    dam.num_particles = 40'000;
    const ParticleSet sets[] = {
        make_boiler_particles(boiler, (boiler.t_start + boiler.t_end) / 2),
        make_dambreak_particles(dam, dam.t_final / 2),
    };
    for (const ParticleSet& particles : sets) {
        for (const BinningScheme binning :
             {BinningScheme::equal_width, BinningScheme::equal_depth}) {
            const auto scalar =
                build_bytes(particles, binning, simd::Level::scalar);
            const int top = static_cast<int>(simd::detected_level());
            for (int l = 1; l <= top; ++l) {
                const auto vec =
                    build_bytes(particles, binning, static_cast<simd::Level>(l));
                ASSERT_EQ(vec, scalar)
                    << "tier " << simd::level_name(static_cast<simd::Level>(l));
            }
        }
    }
}

}  // namespace
}  // namespace bat
